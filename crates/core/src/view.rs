//! Pinned, immutable epoch views — the MVCC read path.
//!
//! [`Engine::pin`](crate::Engine::pin) captures the engine's current
//! state as an [`EpochView`]: a frozen graph snapshot
//! ([`rpq_graph::GraphView`]) plus shared handles to the structural
//! cache, the per-(epoch, query) result cache and the metric
//! accumulators. A view answers `evaluate`/`check`/`ends_from` entirely
//! from that frozen state:
//!
//! * results are **bitwise identical** before, during and after any
//!   later mutation of the engine — the frozen rows are copy-on-write
//!   shared, never overwritten;
//! * structural-cache lookups are pinned to the view's epoch (an entry
//!   from any other epoch is invisible), and anything a pinned reader
//!   computes is inserted *at* its epoch without ever displacing newer
//!   entries;
//! * materialized results are memoized in the bounded
//!   [`ResultCache`] keyed `(epoch, canonical query)` — the fast tier
//!   above the structural cache.
//!
//! Views are cheap to clone (`Arc` bumps + a `Copy` config) and safe to
//! send across threads; the serving layer publishes one per epoch by
//! atomic swap and retains a short ring of them for `query … at <epoch>`
//! time travel.

use crate::cache::EpochPin;
use crate::engine::{eval_one, EngineConfig, EngineMetrics, Strategy};
use crate::error::EngineError;
use crate::result_cache::ResultCache;
use crate::{Breakdown, EliminationStats, MaintenanceMetrics, SharedCache};
use rpq_eval::ProductEvaluator;
use rpq_graph::{GraphView, LabeledMultigraph, PairSet, VertexId};
use rpq_regex::Regex;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// An immutable view of an engine at one graph epoch (see the module
/// docs). Obtained from [`Engine::pin`](crate::Engine::pin).
#[derive(Clone)]
pub struct EpochView {
    graph: Arc<GraphView>,
    cache: Arc<SharedCache>,
    results: Arc<ResultCache>,
    metrics: Arc<Mutex<EngineMetrics>>,
    config: EngineConfig,
    /// Shared pin on this view's epoch in the structural cache: while
    /// any clone of the view is alive, budget eviction spares the
    /// entries the view gets fresh hits on (see `CacheBudget`).
    _pin: Arc<EpochPin>,
}

impl EpochView {
    pub(crate) fn from_parts(
        graph: Arc<GraphView>,
        cache: Arc<SharedCache>,
        results: Arc<ResultCache>,
        metrics: Arc<Mutex<EngineMetrics>>,
        config: EngineConfig,
        pin: Arc<EpochPin>,
    ) -> Self {
        Self {
            graph,
            cache,
            results,
            metrics,
            config,
            _pin: pin,
        }
    }

    /// The epoch this view is pinned to.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// The frozen graph snapshot.
    #[inline]
    pub fn graph(&self) -> &LabeledMultigraph {
        self.graph.graph()
    }

    /// The base configuration captured at pin time.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared structural cache (also the engine's — one set of
    /// structures and counters across every view and the live engine).
    pub fn cache(&self) -> &SharedCache {
        &self.cache
    }

    /// The shared per-(epoch, query) result cache.
    pub fn results(&self) -> &ResultCache {
        &self.results
    }

    /// Evaluates one query against the pinned epoch, under the captured
    /// base configuration. See [`EpochView::evaluate_with`].
    pub fn evaluate(&self, query: &Regex) -> Result<Arc<PairSet>, EngineError> {
        self.evaluate_with(query, self.config)
    }

    /// [`EpochView::evaluate`] under an explicit configuration (the
    /// serving layer's per-connection overlay, resolved).
    ///
    /// The result cache is consulted first — keyed by `(epoch, canonical
    /// query)` only, since results are identical across strategies and
    /// thread counts (property-tested). On a miss the query runs through
    /// the same recursion as `Engine::evaluate`, pinned to this view's
    /// epoch: structural entries stamped with exactly this epoch are
    /// hits, anything else is recomputed from the frozen graph, and
    /// inserts never displace newer entries. The materialized result is
    /// memoized before returning.
    ///
    /// The configuration's clause budget is assumed uniform across
    /// callers sharing one result cache (the serving layer never varies
    /// it per connection): a memoized result is returned without
    /// re-checking the budget.
    pub fn evaluate_with(
        &self,
        query: &Regex,
        config: EngineConfig,
    ) -> Result<Arc<PairSet>, EngineError> {
        let key = query.canonical_key();
        let epoch = self.epoch();
        if let Some(hit) = self.results.get(epoch, &key) {
            return Ok(hit);
        }
        let t = Instant::now();
        let mut local = EngineMetrics::default();
        let result = eval_one(self.graph(), &config, &self.cache, epoch, &mut local, query);
        let build = t.elapsed();
        local.breakdown.total = build;
        self.merge_metrics(local);
        let result = Arc::new(result?);
        // The evaluation time is the entry's cost-to-rebuild under the
        // result cache's cost-aware eviction.
        self.results
            .insert_costed(epoch, key, Arc::clone(&result), build);
        Ok(result)
    }

    /// Parses and evaluates a query string against the pinned epoch.
    pub fn evaluate_str(&self, query: &str) -> Result<Arc<PairSet>, EngineError> {
        let q = Regex::parse(query)?;
        self.evaluate(&q)
    }

    /// Whether a `query`-path from `source` to `target` exists in the
    /// pinned graph (early-exit reachability; bypasses both caches).
    pub fn check(&self, query: &Regex, source: VertexId, target: VertexId) -> bool {
        rpq_eval::witness::find_witness(self.graph(), query, source, target).is_some()
    }

    /// End vertices of `query`-paths starting at `source` in the pinned
    /// graph (selective evaluation; bypasses both caches).
    pub fn ends_from(&self, query: &Regex, source: VertexId) -> Vec<VertexId> {
        ProductEvaluator::new(self.graph(), query).ends_from(source)
    }

    /// Start vertices of `query`-paths ending at `target` in the pinned
    /// graph (selective backward evaluation).
    pub fn starts_to(&self, query: &Regex, target: VertexId) -> Vec<VertexId> {
        ProductEvaluator::new(self.graph(), query).starts_to(target)
    }

    /// Total pairs held in shared structures for `strategy` — the same
    /// aggregate as `Engine::shared_data_pairs_with`, readable without
    /// the engine.
    pub fn shared_data_pairs_with(&self, strategy: Strategy) -> usize {
        match strategy {
            Strategy::NoSharing => 0,
            Strategy::FullSharing => self.cache.full_shared_pairs(),
            Strategy::RtcSharing => self.cache.rtc_shared_pairs(),
        }
    }

    /// Accumulated stage timings (shared with the engine — see
    /// `Engine::breakdown`).
    pub fn breakdown(&self) -> Breakdown {
        self.metrics().breakdown
    }

    /// Accumulated elimination counters (shared with the engine).
    pub fn elimination_stats(&self) -> EliminationStats {
        self.metrics().stats
    }

    /// Accumulated maintenance counters (shared with the engine).
    pub fn maintenance_metrics(&self) -> MaintenanceMetrics {
        self.metrics().maintenance
    }

    fn metrics(&self) -> std::sync::MutexGuard<'_, EngineMetrics> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn merge_metrics(&self, local: EngineMetrics) {
        let mut m = self.metrics();
        m.breakdown += local.breakdown;
        m.stats += local.stats;
        m.maintenance += local.maintenance;
    }
}

/// Evaluates `query` against a pinned view — the free-function spelling
/// of [`EpochView::evaluate`], for callers holding `&EpochView`.
pub fn evaluate_at(view: &EpochView, query: &Regex) -> Result<Arc<PairSet>, EngineError> {
    view.evaluate(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;
    use rpq_graph::fixtures::paper_graph;
    use rpq_graph::GraphDelta;

    #[test]
    fn pinned_view_survives_later_deltas_bitwise() {
        let mut e = Engine::new_dynamic(paper_graph());
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        let before = e.evaluate(&q).unwrap();

        let v0 = e.pin();
        assert_eq!(v0.epoch(), 0);

        // Mutate the engine underneath the pinned view.
        let mut d = GraphDelta::new();
        d.insert(3, "c", 7).delete(2, "b", 5);
        e.apply_delta(&d);
        let after = e.evaluate(&q).unwrap();
        assert_ne!(before, after, "delta must move the live result");

        // The view still answers from epoch 0, bit for bit.
        assert_eq!(*v0.evaluate(&q).unwrap(), before);
        assert_eq!(v0.epoch(), 0);
        assert_eq!(e.epoch(), 1);

        // A fresh pin sees the new epoch.
        let v1 = e.pin();
        assert_eq!(v1.epoch(), 1);
        assert_eq!(*v1.evaluate(&q).unwrap(), after);
    }

    #[test]
    fn view_results_are_memoized_per_epoch() {
        let mut e = Engine::new_dynamic(paper_graph());
        let q = Regex::parse("(b.c)+").unwrap();
        let v0 = e.pin();
        let first = v0.evaluate(&q).unwrap();
        let second = v0.evaluate(&q).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second call is a view hit");
        assert_eq!(e.results().view_hits(), 1);
        assert_eq!(e.results().misses(), 1);

        // A new epoch misses the memo and computes its own entry.
        e.apply_delta(GraphDelta::new().delete(2, "b", 5));
        let v1 = e.pin();
        let moved = v1.evaluate(&q).unwrap();
        assert!(!Arc::ptr_eq(&first, &moved));
        assert_eq!(e.results().misses(), 2);
        assert_eq!(e.results().len(), 2);
    }

    #[test]
    fn old_view_never_displaces_newer_structural_entries() {
        let mut e = Engine::new_dynamic(paper_graph());
        let q = Regex::parse("(b.c)+").unwrap();
        let v0 = e.pin();
        e.apply_delta(GraphDelta::new().insert(6, "b", 8).insert(8, "c", 6));
        // Live engine computes the epoch-1 structure first…
        let live = e.evaluate(&q).unwrap();
        let live_pairs = e.cache().rtc_shared_pairs();
        // …then the old view evaluates at epoch 0, inserting its own
        // structure at epoch 0 — which must not displace the fresh one.
        let pinned = v0.evaluate(&q).unwrap();
        assert_ne!(*pinned, live);
        assert_eq!(e.cache().rtc_shared_pairs(), live_pairs);
        assert!(e.cache().contains_fresh_rtc("b.c"));
        // The live result is untouched by the pinned evaluation.
        assert_eq!(e.evaluate(&q).unwrap(), live);
    }

    #[test]
    fn view_metrics_are_shared_with_the_engine() {
        let e = Engine::new_dynamic(paper_graph());
        let v = e.pin();
        v.evaluate_str("d.(b.c)+.c").unwrap();
        // The evaluation above accumulated into the engine's breakdown…
        assert!(e.breakdown().total > std::time::Duration::ZERO);
        assert_eq!(v.breakdown().total, e.breakdown().total);
        // …and reset_metrics (engine-side) clears the view's counters too,
        // including the result-cache tiers (they share one set of Arcs, so
        // nothing is double-counted across publishes).
        e.reset_metrics();
        assert_eq!(v.breakdown().total, std::time::Duration::ZERO);
        assert_eq!((e.results().view_hits(), e.results().misses()), (0, 0));
    }

    #[test]
    fn selective_apis_answer_from_the_pinned_graph() {
        let mut e = Engine::new_dynamic(paper_graph());
        let q = Regex::parse("d.(b.c)+.c").unwrap();
        let v0 = e.pin();
        e.apply_delta(GraphDelta::new().delete(7, "d", 4));
        // Live: source 7 lost its d-edge, no paths remain.
        assert!(e.ends_from(&q, VertexId(7)).is_empty());
        // Pinned: epoch 0 still has them.
        let mut ends: Vec<u32> = v0
            .ends_from(&q, VertexId(7))
            .iter()
            .map(|x| x.raw())
            .collect();
        ends.sort_unstable();
        assert_eq!(ends, vec![3, 5]);
        assert!(v0.check(&q, VertexId(7), VertexId(5)));
        assert!(!e.check(&q, VertexId(7), VertexId(5)));
        let starts: Vec<u32> = v0
            .starts_to(&q, VertexId(5))
            .iter()
            .map(|x| x.raw())
            .collect();
        assert_eq!(starts, vec![7]);
    }

    #[test]
    fn evaluate_at_free_function_matches_method() {
        let e = Engine::new_dynamic(paper_graph());
        let v = e.pin();
        let q = Regex::parse("(b.c)+").unwrap();
        assert_eq!(evaluate_at(&v, &q).unwrap(), v.evaluate(&q).unwrap());
    }

    #[test]
    fn pin_of_a_borrowed_engine_is_epoch_zero() {
        let g = paper_graph();
        let e = Engine::new(&g);
        let v = e.pin();
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.graph().edge_count(), g.edge_count());
        assert_eq!(
            *v.evaluate_str("d.(b.c)+.c").unwrap(),
            e.evaluate_str("d.(b.c)+.c").unwrap()
        );
    }
}
