//! Engine error type.

use rpq_regex::{DnfError, ParseError};
use std::fmt;

/// Errors surfaced by query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// DNF conversion exceeded its clause budget.
    Dnf(DnfError),
    /// A query string failed to parse (only from the string-accepting
    /// convenience APIs).
    Parse(ParseError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Dnf(e) => write!(f, "{e}"),
            EngineError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Dnf(e) => Some(e),
            EngineError::Parse(e) => Some(e),
        }
    }
}

impl From<DnfError> for EngineError {
    fn from(e: DnfError) -> Self {
        EngineError::Dnf(e)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: EngineError = DnfError::TooManyClauses { limit: 8 }.into();
        assert!(e.to_string().contains("clause limit"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
