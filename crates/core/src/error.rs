//! Engine error type.

use rpq_regex::{DnfError, ParseError};
use std::fmt;

/// Errors surfaced by query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// DNF conversion exceeded its clause budget.
    Dnf(DnfError),
    /// A query string failed to parse (only from the string-accepting
    /// convenience APIs).
    Parse(ParseError),
    /// A graph-layer error surfaced through the engine (snapshot
    /// embedding, graph loading).
    Graph(rpq_graph::GraphError),
    /// A malformed, truncated or version-incompatible engine snapshot
    /// (see [`crate::snapshot`]).
    Snapshot(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Dnf(e) => write!(f, "{e}"),
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Graph(e) => write!(f, "{e}"),
            EngineError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Dnf(e) => Some(e),
            EngineError::Parse(e) => Some(e),
            EngineError::Graph(e) => Some(e),
            EngineError::Snapshot(_) => None,
        }
    }
}

impl From<DnfError> for EngineError {
    fn from(e: DnfError) -> Self {
        EngineError::Dnf(e)
    }
}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<rpq_graph::GraphError> for EngineError {
    fn from(e: rpq_graph::GraphError) -> Self {
        EngineError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: EngineError = DnfError::TooManyClauses { limit: 8 }.into();
        assert!(e.to_string().contains("clause limit"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
