//! Property-based tests on the expression language.

use proptest::prelude::*;
use rpq_regex::{decompose, to_dnf, Literal, Regex};

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::Empty),
        prop::sample::select(vec!["a", "b", "c", "xy", "l0"]).prop_map(Regex::label),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..4).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::plus),
            inner.clone().prop_map(Regex::star),
            inner.prop_map(Regex::optional),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display → parse is the identity on normalized expressions.
    #[test]
    fn parse_display_roundtrip(r in arb_regex()) {
        // `∅` only prints at top level in normalized form; skip Empty
        // (covered by a unit test) to keep the property crisp.
        prop_assume!(r != Regex::Empty);
        let printed = r.to_string();
        let reparsed = Regex::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse of '{printed}' failed: {e}"));
        prop_assert_eq!(r, reparsed, "printed: {}", printed);
    }

    /// Canonical keys are stable across a print/parse cycle.
    #[test]
    fn canonical_key_stable(r in arb_regex()) {
        prop_assume!(r != Regex::Empty);
        let key = r.canonical_key();
        let reparsed = Regex::parse(&key).unwrap();
        prop_assert_eq!(key, reparsed.canonical_key());
    }

    /// Smart constructors are idempotent: rebuilding a normalized tree
    /// through the constructors yields the same tree.
    #[test]
    fn constructors_idempotent(r in arb_regex()) {
        fn rebuild(r: &Regex) -> Regex {
            match r {
                Regex::Empty => Regex::Empty,
                Regex::Epsilon => Regex::Epsilon,
                Regex::Label(l) => Regex::label(l.clone()),
                Regex::Concat(parts) => Regex::concat(parts.iter().map(rebuild).collect()),
                Regex::Alt(parts) => Regex::alt(parts.iter().map(rebuild).collect()),
                Regex::Plus(inner) => Regex::plus(rebuild(inner)),
                Regex::Star(inner) => Regex::star(rebuild(inner)),
                Regex::Optional(inner) => Regex::optional(rebuild(inner)),
            }
        }
        prop_assert_eq!(rebuild(&r), r);
    }

    /// DNF clauses are closure-literal-correct: every clause either has no
    /// closure or decomposes with a closure whose Post is label-only, and
    /// the reassembled batch unit equals the clause.
    #[test]
    fn dnf_clauses_decompose_cleanly(r in arb_regex()) {
        let Ok(clauses) = to_dnf(&r) else { return Ok(()); };
        for clause in &clauses {
            let unit = decompose(clause);
            prop_assert_eq!(unit.to_regex(), clause.to_regex());
            if let Some(i) = clause.literals.iter().rposition(|l| l.is_closure()) {
                for lit in &clause.literals[i + 1..] {
                    prop_assert!(matches!(lit, Literal::Label(_)));
                }
            } else {
                prop_assert_eq!(unit.closure, None);
            }
        }
    }

    /// Nullability is preserved by DNF: the query is nullable iff some
    /// clause is nullable.
    #[test]
    fn dnf_preserves_nullability(r in arb_regex()) {
        let Ok(clauses) = to_dnf(&r) else { return Ok(()); };
        let any_nullable = clauses.iter().any(|c| c.to_regex().nullable());
        prop_assert_eq!(r.nullable(), any_nullable);
    }

    /// The label set is preserved by DNF (no labels invented or lost,
    /// modulo clauses dropped as ∅ — which normalization prevents).
    #[test]
    fn dnf_preserves_labels(r in arb_regex()) {
        let Ok(clauses) = to_dnf(&r) else { return Ok(()); };
        let mut from_clauses: Vec<String> = clauses
            .iter()
            .flat_map(|c| c.to_regex().labels().into_iter().map(String::from).collect::<Vec<_>>())
            .collect();
        from_clauses.sort();
        from_clauses.dedup();
        let mut from_query: Vec<String> = r.labels().into_iter().map(String::from).collect();
        from_query.sort();
        prop_assert_eq!(from_query, from_clauses);
    }

    /// `size` and `nullable` never disagree with the printed form's reparse.
    #[test]
    fn metadata_survives_roundtrip(r in arb_regex()) {
        prop_assume!(r != Regex::Empty);
        let reparsed = Regex::parse(&r.to_string()).unwrap();
        prop_assert_eq!(r.nullable(), reparsed.nullable());
        prop_assert_eq!(r.size(), reparsed.size());
        prop_assert_eq!(r.has_closure(), reparsed.has_closure());
    }
}

#[test]
fn empty_regex_prints_and_reparses() {
    assert_eq!(Regex::Empty.to_string(), "∅");
    assert_eq!(Regex::parse("∅").unwrap(), Regex::Empty);
}
