//! Error types for parsing and DNF conversion.

use std::fmt;

/// A parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the error was detected.
    pub position: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(position: usize, message: impl Into<String>) -> Self {
        Self {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at offset {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors from DNF conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnfError {
    /// The DNF would exceed the configured clause budget. Distribution of
    /// alternation over concatenation is exponential in the worst case; the
    /// limit keeps adversarial queries from exhausting memory.
    TooManyClauses {
        /// The configured maximum.
        limit: usize,
    },
}

impl fmt::Display for DnfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DnfError::TooManyClauses { limit } => {
                write!(f, "DNF conversion exceeded the clause limit of {limit}")
            }
        }
    }
}

impl std::error::Error for DnfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error() {
        let e = ParseError::new(4, "unexpected ')'");
        assert_eq!(e.to_string(), "parse error at offset 4: unexpected ')'");
    }

    #[test]
    fn display_dnf_error() {
        let e = DnfError::TooManyClauses { limit: 10 };
        assert_eq!(
            e.to_string(),
            "DNF conversion exceeded the clause limit of 10"
        );
    }
}
