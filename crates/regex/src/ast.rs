//! The regular-expression AST and its normalizing constructors.

use std::fmt;

/// Kleene closure flavor: `R+` (one or more) or `R*` (zero or more).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ClosureKind {
    /// Kleene plus — at least one repetition.
    Plus,
    /// Kleene star — zero or more repetitions.
    Star,
}

impl fmt::Display for ClosureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClosureKind::Plus => "+",
            ClosureKind::Star => "*",
        })
    }
}

/// A regular path query over edge labels.
///
/// Invariants maintained by the smart constructors ([`Regex::concat`],
/// [`Regex::alt`], [`Regex::plus`], [`Regex::star`], [`Regex::optional`]):
///
/// * `Concat`/`Alt` hold at least two children and are never directly
///   nested in a node of the same kind (flattened);
/// * `Concat` contains no `Epsilon` children and collapses to `Empty` if
///   any child is `Empty`;
/// * `Alt` contains no duplicate children and no `Empty` children;
/// * degenerate closures are rewritten (`∅+ → ∅`, `ε* → ε`, `(r*)+ → r*`,
///   `(r+)* → r*`, `(r?)+ → r*`, …).
///
/// The invariants make structural equality a useful cache key: the engine
/// shares RTCs between queries whose closure bodies are structurally equal
/// after normalization.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language `∅` (matches no path).
    Empty,
    /// The empty path `ε` (matches the zero-length path at every vertex).
    Epsilon,
    /// A single edge label.
    Label(String),
    /// Concatenation `r1·r2·…·rk`.
    Concat(Vec<Regex>),
    /// Alternation `r1|r2|…|rk`.
    Alt(Vec<Regex>),
    /// Kleene plus `r+`.
    Plus(Box<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
    /// Option `r?` (equivalent to `r|ε`).
    Optional(Box<Regex>),
}

impl Regex {
    /// A single-label query.
    pub fn label(name: impl Into<String>) -> Regex {
        Regex::Label(name.into())
    }

    /// Normalized concatenation of `parts`.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Epsilon,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Concat(flat),
        }
    }

    /// Normalized alternation of `parts`.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut flat: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for q in inner {
                        if !flat.contains(&q) {
                            flat.push(q);
                        }
                    }
                }
                other => {
                    if !flat.contains(&other) {
                        flat.push(other);
                    }
                }
            }
        }
        match flat.len() {
            0 => Regex::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Alt(flat),
        }
    }

    /// Normalized Kleene plus.
    pub fn plus(r: Regex) -> Regex {
        match r {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            p @ Regex::Plus(_) => p,
            Regex::Optional(inner) => Regex::star(*inner),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Normalized Kleene star.
    pub fn star(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(inner) => Regex::Star(inner),
            Regex::Plus(inner) | Regex::Optional(inner) => Regex::Star(inner),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// Normalized option (`r?`).
    pub fn optional(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            s @ Regex::Star(_) => s,
            Regex::Plus(inner) => Regex::Star(inner),
            o @ Regex::Optional(_) => o,
            other => Regex::Optional(Box::new(other)),
        }
    }

    /// Applies a closure of the given kind.
    pub fn closure(r: Regex, kind: ClosureKind) -> Regex {
        match kind {
            ClosureKind::Plus => Regex::plus(r),
            ClosureKind::Star => Regex::star(r),
        }
    }

    /// Whether `ε ∈ L(self)` — i.e. the zero-length path matches.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Label(_) => false,
            Regex::Epsilon | Regex::Star(_) | Regex::Optional(_) => true,
            Regex::Plus(r) => r.nullable(),
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Whether the expression contains any Kleene closure (`+` or `*`) at
    /// any depth.
    pub fn has_closure(&self) -> bool {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Label(_) => false,
            Regex::Plus(_) | Regex::Star(_) => true,
            Regex::Optional(r) => r.has_closure(),
            Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().any(Regex::has_closure),
        }
    }

    /// Whether the language is empty (`L(self) = ∅`).
    ///
    /// With the constructor invariants `Empty` never survives inside a
    /// composite node, so this is a top-level check.
    pub fn is_empty_language(&self) -> bool {
        matches!(self, Regex::Empty)
    }

    /// Collects the distinct label names used, in first-occurrence order.
    pub fn labels(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_labels(&mut out);
        out
    }

    fn collect_labels<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Label(l) => {
                if !out.contains(&l.as_str()) {
                    out.push(l);
                }
            }
            Regex::Plus(r) | Regex::Star(r) | Regex::Optional(r) => r.collect_labels(out),
            Regex::Concat(parts) | Regex::Alt(parts) => {
                for p in parts {
                    p.collect_labels(out);
                }
            }
        }
    }

    /// Number of AST nodes; a rough complexity measure used in tests and
    /// workload statistics.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Label(_) => 1,
            Regex::Plus(r) | Regex::Star(r) | Regex::Optional(r) => 1 + r.size(),
            Regex::Concat(parts) | Regex::Alt(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
        }
    }

    /// A deterministic textual form usable as a cache key.
    ///
    /// Structurally equal (post-normalization) expressions produce equal
    /// keys; the key parses back to an equal expression.
    pub fn canonical_key(&self) -> String {
        self.to_string()
    }

    fn precedence(&self) -> u8 {
        match self {
            Regex::Alt(_) => 0,
            Regex::Concat(_) => 1,
            _ => 2,
        }
    }

    fn fmt_child(&self, child: &Regex, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if child.precedence() < self.precedence() {
            write!(f, "({child})")
        } else {
            write!(f, "{child}")
        }
    }
}

/// Whether a label name can be printed bare (re-parses as one token).
fn is_plain_label(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        // Mirrors the parser: first char alphanumeric/underscore (but not
        // the ε/∅ meta characters), rest may also contain '-'.
        Some(c) if (c.is_alphanumeric() && c != 'ε' && c != '∅') || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| (c.is_alphanumeric() && c != 'ε' && c != '∅') || c == '_' || c == '-')
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => f.write_str("∅"),
            Regex::Epsilon => f.write_str("()"),
            Regex::Label(l) => {
                if is_plain_label(l) {
                    f.write_str(l)
                } else {
                    write!(f, "'{l}'")
                }
            }
            Regex::Concat(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(".")?;
                    }
                    self.fmt_child(p, f)?;
                }
                Ok(())
            }
            Regex::Alt(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str("|")?;
                    }
                    self.fmt_child(p, f)?;
                }
                Ok(())
            }
            Regex::Plus(r) => {
                if r.precedence() < 2 {
                    write!(f, "({r})+")
                } else {
                    write!(f, "{r}+")
                }
            }
            Regex::Star(r) => {
                if r.precedence() < 2 {
                    write!(f, "({r})*")
                } else {
                    write!(f, "{r}*")
                }
            }
            Regex::Optional(r) => {
                if r.precedence() < 2 {
                    write!(f, "({r})?")
                } else {
                    write!(f, "{r}?")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lab(s: &str) -> Regex {
        Regex::label(s)
    }

    #[test]
    fn concat_flattens_and_drops_epsilon() {
        let r = Regex::concat(vec![
            lab("a"),
            Regex::Epsilon,
            Regex::concat(vec![lab("b"), lab("c")]),
        ]);
        assert_eq!(r, Regex::Concat(vec![lab("a"), lab("b"), lab("c")]));
    }

    #[test]
    fn concat_with_empty_is_empty() {
        let r = Regex::concat(vec![lab("a"), Regex::Empty, lab("b")]);
        assert_eq!(r, Regex::Empty);
    }

    #[test]
    fn concat_degenerate_cases() {
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
        assert_eq!(Regex::concat(vec![lab("a")]), lab("a"));
        assert_eq!(
            Regex::concat(vec![Regex::Epsilon, Regex::Epsilon]),
            Regex::Epsilon
        );
    }

    #[test]
    fn alt_flattens_dedups_drops_empty() {
        let r = Regex::alt(vec![
            lab("a"),
            Regex::Empty,
            Regex::alt(vec![lab("b"), lab("a")]),
        ]);
        assert_eq!(r, Regex::Alt(vec![lab("a"), lab("b")]));
    }

    #[test]
    fn alt_degenerate_cases() {
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(Regex::alt(vec![lab("a")]), lab("a"));
        assert_eq!(Regex::alt(vec![lab("a"), lab("a")]), lab("a"));
        assert_eq!(Regex::alt(vec![Regex::Empty, Regex::Empty]), Regex::Empty);
    }

    #[test]
    fn closure_rewrites() {
        assert_eq!(Regex::plus(Regex::Empty), Regex::Empty);
        assert_eq!(Regex::plus(Regex::Epsilon), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::Epsilon), Regex::Epsilon);
        // (r*)+ = r*, (r+)* = r*, (r?)+ = r*, (r?)* = r*
        let r = lab("a");
        assert_eq!(Regex::plus(Regex::star(r.clone())), Regex::star(r.clone()));
        assert_eq!(Regex::star(Regex::plus(r.clone())), Regex::star(r.clone()));
        assert_eq!(
            Regex::plus(Regex::optional(r.clone())),
            Regex::star(r.clone())
        );
        assert_eq!(
            Regex::star(Regex::optional(r.clone())),
            Regex::star(r.clone())
        );
        // (r+)+ = r+, (r*)* = r*
        assert_eq!(Regex::plus(Regex::plus(r.clone())), Regex::plus(r.clone()));
        assert_eq!(Regex::star(Regex::star(r.clone())), Regex::star(r.clone()));
        // (r+)? = r*, (r*)? = r*, r?? = r?
        assert_eq!(
            Regex::optional(Regex::plus(r.clone())),
            Regex::star(r.clone())
        );
        assert_eq!(
            Regex::optional(Regex::star(r.clone())),
            Regex::star(r.clone())
        );
        assert_eq!(
            Regex::optional(Regex::optional(r.clone())),
            Regex::optional(r.clone())
        );
    }

    #[test]
    fn nullable_cases() {
        assert!(!lab("a").nullable());
        assert!(!Regex::Empty.nullable());
        assert!(Regex::Epsilon.nullable());
        assert!(Regex::star(lab("a")).nullable());
        assert!(Regex::optional(lab("a")).nullable());
        assert!(!Regex::plus(lab("a")).nullable());
        assert!(!Regex::concat(vec![lab("a"), Regex::star(lab("b"))]).nullable());
        assert!(Regex::concat(vec![Regex::star(lab("a")), Regex::star(lab("b"))]).nullable());
        assert!(Regex::alt(vec![lab("a"), Regex::star(lab("b"))]).nullable());
    }

    #[test]
    fn has_closure_cases() {
        assert!(!lab("a").has_closure());
        assert!(Regex::plus(lab("a")).has_closure());
        assert!(Regex::star(lab("a")).has_closure());
        assert!(!Regex::optional(lab("a")).has_closure());
        assert!(Regex::concat(vec![lab("a"), Regex::plus(lab("b"))]).has_closure());
        assert!(Regex::optional(Regex::plus(lab("a"))).has_closure());
    }

    #[test]
    fn labels_in_first_occurrence_order() {
        let r = Regex::concat(vec![
            lab("b"),
            Regex::alt(vec![lab("a"), lab("b")]),
            Regex::plus(lab("c")),
        ]);
        assert_eq!(r.labels(), vec!["b", "a", "c"]);
    }

    #[test]
    fn display_respects_precedence() {
        let r = Regex::concat(vec![
            lab("d"),
            Regex::plus(Regex::concat(vec![lab("b"), lab("c")])),
            lab("c"),
        ]);
        assert_eq!(r.to_string(), "d.(b.c)+.c");
        let r = Regex::alt(vec![lab("a"), Regex::concat(vec![lab("b"), lab("c")])]);
        assert_eq!(r.to_string(), "a|b.c");
        let r = Regex::concat(vec![Regex::alt(vec![lab("a"), lab("b")]), lab("c")]);
        assert_eq!(r.to_string(), "(a|b).c");
        let r = Regex::star(Regex::alt(vec![lab("a"), lab("b")]));
        assert_eq!(r.to_string(), "(a|b)*");
        assert_eq!(Regex::optional(lab("a")).to_string(), "a?");
    }

    #[test]
    fn size_counts_nodes() {
        assert_eq!(lab("a").size(), 1);
        assert_eq!(Regex::plus(lab("a")).size(), 2);
        assert_eq!(Regex::concat(vec![lab("a"), lab("b")]).size(), 3);
    }

    #[test]
    fn labels_needing_quotes_are_quoted() {
        assert_eq!(lab("a").to_string(), "a");
        assert_eq!(lab("has_part").to_string(), "has_part");
        assert_eq!(lab("has part").to_string(), "'has part'");
        assert_eq!(lab("x.y").to_string(), "'x.y'");
        assert_eq!(lab("-x").to_string(), "'-x'");
        // Quoted forms must re-parse to the same expression.
        for name in ["has part", "x.y", "a|b", "-x"] {
            let r = lab(name);
            assert_eq!(Regex::parse(&r.to_string()).unwrap(), r, "{name}");
        }
    }

    #[test]
    fn canonical_key_is_deterministic() {
        let r1 = Regex::concat(vec![lab("a"), Regex::concat(vec![lab("b"), lab("c")])]);
        let r2 = Regex::concat(vec![Regex::concat(vec![lab("a"), lab("b")]), lab("c")]);
        assert_eq!(r1.canonical_key(), r2.canonical_key());
    }
}
