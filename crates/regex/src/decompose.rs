//! `DecomposeCL` — splitting a DNF clause into `Pre · R^(+|*) · Post`.
//!
//! Algorithm 1 line 4: each clause is decomposed around its **rightmost**
//! Kleene closure. `Post` is then guaranteed closure-free (a plain label
//! sequence), while `Pre` may still contain closures — Algorithm 1 handles
//! those by recursion. A clause with no closure decomposes into
//! `Pre = ε`, `R = ε`, `Type = NULL` with the whole clause as `Post`.

use crate::ast::{ClosureKind, Regex};
use crate::dnf::{Clause, Literal};

/// A decomposed batch unit `Pre · R^(+|*) · Post`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchUnit {
    /// The prefix expression; may contain (nested) Kleene closures.
    /// `Regex::Epsilon` when the clause starts with the closure.
    pub pre: Regex,
    /// The rightmost closure `(R, Type)`, or `None` for closure-free
    /// clauses (the paper's `Type = NULL` case).
    pub closure: Option<(Regex, ClosureKind)>,
    /// The closure-free postfix as a label sequence.
    pub post: Vec<String>,
}

impl BatchUnit {
    /// Reassembles the batch unit into the equivalent regular expression.
    pub fn to_regex(&self) -> Regex {
        let mut parts = vec![self.pre.clone()];
        if let Some((r, kind)) = &self.closure {
            parts.push(Regex::closure(r.clone(), *kind));
        }
        parts.extend(self.post.iter().map(|l| Regex::Label(l.clone())));
        Regex::concat(parts)
    }
}

/// Decomposes `clause` around its rightmost Kleene-closure literal.
pub fn decompose(clause: &Clause) -> BatchUnit {
    let rightmost = clause
        .literals
        .iter()
        .rposition(|l| matches!(l, Literal::Closure { .. }));

    match rightmost {
        None => BatchUnit {
            pre: Regex::Epsilon,
            closure: None,
            post: clause
                .literals
                .iter()
                .map(|l| match l {
                    Literal::Label(name) => name.clone(),
                    Literal::Closure { .. } => unreachable!("no closure in clause"),
                })
                .collect(),
        },
        Some(i) => {
            let pre = Regex::concat(clause.literals[..i].iter().map(Literal::to_regex).collect());
            let (inner, kind) = match &clause.literals[i] {
                Literal::Closure { inner, kind } => (inner.clone(), *kind),
                Literal::Label(_) => unreachable!("rposition found a closure"),
            };
            let post = clause.literals[i + 1..]
                .iter()
                .map(|l| match l {
                    Literal::Label(name) => name.clone(),
                    Literal::Closure { .. } => {
                        unreachable!("literals after the rightmost closure are labels")
                    }
                })
                .collect();
            BatchUnit {
                pre,
                closure: Some((inner, kind)),
                post,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnf::to_dnf;

    fn decompose_query(src: &str) -> BatchUnit {
        let r = Regex::parse(src).unwrap();
        let clauses = to_dnf(&r).unwrap();
        assert_eq!(clauses.len(), 1, "expected single clause for {src}");
        decompose(&clauses[0])
    }

    #[test]
    fn closure_free_clause() {
        // Example 7, query `a`: Pre = ε, R = ε (None), Post = [a].
        let u = decompose_query("a");
        assert_eq!(u.pre, Regex::Epsilon);
        assert_eq!(u.closure, None);
        assert_eq!(u.post, vec!["a"]);
    }

    #[test]
    fn multi_label_closure_free_clause() {
        let u = decompose_query("a.b.c");
        assert_eq!(u.pre, Regex::Epsilon);
        assert_eq!(u.closure, None);
        assert_eq!(u.post, vec!["a", "b", "c"]);
    }

    #[test]
    fn example7_single_closure() {
        // a·(a·b)+·b: Pre = a, R = a·b, Type = +, Post = [b].
        let u = decompose_query("a.(a.b)+.b");
        assert_eq!(u.pre, Regex::label("a"));
        assert_eq!(
            u.closure,
            Some((Regex::parse("a.b").unwrap(), ClosureKind::Plus))
        );
        assert_eq!(u.post, vec!["b"]);
    }

    #[test]
    fn example7_nested_query() {
        // (a·b)*·b+·(a·b+·c)+: Pre = (a·b)*·b+, R = a·b+·c, Type = +, Post = ε.
        let u = decompose_query("(a.b)*.b+.(a.b+.c)+");
        assert_eq!(u.pre, Regex::parse("(a.b)*.b+").unwrap());
        assert_eq!(
            u.closure,
            Some((Regex::parse("a.b+.c").unwrap(), ClosureKind::Plus))
        );
        assert!(u.post.is_empty());
    }

    #[test]
    fn example7_recursive_step() {
        // Decomposing the Pre of the previous test: (a·b)*·b+ gives
        // Pre = (a·b)*, R = b, Type = +, Post = ε.
        let u = decompose_query("(a.b)*.b+");
        assert_eq!(u.pre, Regex::parse("(a.b)*").unwrap());
        assert_eq!(u.closure, Some((Regex::label("b"), ClosureKind::Plus)));
        assert!(u.post.is_empty());

        // And one level deeper: (a·b)* gives Pre = ε, R = a·b, Type = *.
        let u = decompose_query("(a.b)*");
        assert_eq!(u.pre, Regex::Epsilon);
        assert_eq!(
            u.closure,
            Some((Regex::parse("a.b").unwrap(), ClosureKind::Star))
        );
        assert!(u.post.is_empty());
    }

    #[test]
    fn rightmost_closure_is_selected() {
        // a+·b·c*·d: the rightmost closure is c*, so Pre = a+·b.
        let u = decompose_query("a+.b.c*.d");
        assert_eq!(u.pre, Regex::parse("a+.b").unwrap());
        assert_eq!(u.closure, Some((Regex::label("c"), ClosureKind::Star)));
        assert_eq!(u.post, vec!["d"]);
    }

    #[test]
    fn paper_running_query() {
        // d·(b·c)+·c: Pre = d, R = b·c, Type = +, Post = [c].
        let u = decompose_query("d.(b.c)+.c");
        assert_eq!(u.pre, Regex::label("d"));
        assert_eq!(
            u.closure,
            Some((Regex::parse("b.c").unwrap(), ClosureKind::Plus))
        );
        assert_eq!(u.post, vec!["c"]);
    }

    #[test]
    fn to_regex_reassembles_clause() {
        for src in [
            "a",
            "a.b.c",
            "a.(a.b)+.b",
            "(a.b)*.b+",
            "d.(b.c)+.c",
            "a+.b.c*.d",
        ] {
            let r = Regex::parse(src).unwrap();
            let clauses = to_dnf(&r).unwrap();
            let u = decompose(&clauses[0]);
            assert_eq!(u.to_regex(), clauses[0].to_regex(), "src={src}");
        }
    }

    #[test]
    fn epsilon_clause_decomposes_to_empty_post() {
        let u = decompose(&Clause::epsilon());
        assert_eq!(u.pre, Regex::Epsilon);
        assert_eq!(u.closure, None);
        assert!(u.post.is_empty());
        assert_eq!(u.to_regex(), Regex::Epsilon);
    }
}
