#![warn(missing_docs)]
//! The RPQ expression language.
//!
//! A regular path query is a regular expression over edge labels
//! (Section II-B of the paper). This crate provides:
//!
//! * [`Regex`] — the AST with normalizing smart constructors;
//! * [`Regex::parse`] — a recursive-descent parser for the textual syntax
//!   (`.`/`/` concatenation, `|` alternation, `+` `*` `?` postfix,
//!   parentheses, `()`/`ε` for the empty path);
//! * [`dnf::to_dnf`] — conversion to disjunctive normal form treating each
//!   **outermost Kleene closure as a literal** (Section IV-A);
//! * [`decompose::decompose`] — `DecomposeCL` of Algorithm 1: splitting a
//!   DNF clause into `Pre · R^(+|*) · Post` around its *rightmost* closure,
//!   with a closure-free `Post`.
//!
//! ```
//! use rpq_regex::{decompose, to_dnf, Regex};
//!
//! let q = Regex::parse("d.(b.c)+.c").unwrap();
//! let clauses = to_dnf(&q).unwrap();
//! let unit = decompose(&clauses[0]);
//! assert_eq!(unit.pre.to_string(), "d");
//! assert_eq!(unit.closure.unwrap().0.to_string(), "b.c");
//! assert_eq!(unit.post, vec!["c".to_string()]);
//! ```

pub mod ast;
pub mod decompose;
pub mod dnf;
pub mod error;
pub mod parser;

pub use ast::{ClosureKind, Regex};
pub use decompose::{decompose, BatchUnit};
pub use dnf::{to_dnf, to_dnf_with_limit, Clause, Literal, DEFAULT_CLAUSE_LIMIT};
pub use error::{DnfError, ParseError};
