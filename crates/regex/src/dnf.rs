//! Disjunctive normal form with outermost Kleene closures as literals.
//!
//! Section IV-A: "we can convert all RPQs to a logically equivalent DNF
//! treating each outermost Kleene closure as a literal" \[15\]. A DNF clause
//! is a concatenation of literals, where a literal is either a single edge
//! label or a whole closure `R+`/`R*` (whose body may itself contain
//! arbitrary nesting — the recursion in Algorithm 1 deals with that).
//!
//! The transformation distributes alternation over concatenation
//! (`(a|b)·c → a·c | b·c`) and expands options (`r? → r | ε`). It can grow
//! exponentially, so [`to_dnf_with_limit`] enforces a clause budget.

use crate::ast::{ClosureKind, Regex};
use crate::error::DnfError;
use std::fmt;

/// Default clause budget for [`to_dnf`].
pub const DEFAULT_CLAUSE_LIMIT: usize = 4096;

/// A DNF literal: an edge label or an outermost Kleene closure.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Literal {
    /// A single edge label.
    Label(String),
    /// An outermost closure `inner+` or `inner*`.
    Closure {
        /// The closure body `R` (may contain nested closures).
        inner: Regex,
        /// Plus or star.
        kind: ClosureKind,
    },
}

impl Literal {
    /// Converts the literal back to a regular expression.
    pub fn to_regex(&self) -> Regex {
        match self {
            Literal::Label(l) => Regex::Label(l.clone()),
            Literal::Closure { inner, kind } => Regex::closure(inner.clone(), *kind),
        }
    }

    /// Whether this literal is a closure.
    pub fn is_closure(&self) -> bool {
        matches!(self, Literal::Closure { .. })
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_regex())
    }
}

/// A DNF clause: a concatenation of literals. The empty clause is `ε`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    /// The literals, in concatenation order.
    pub literals: Vec<Literal>,
}

impl Clause {
    /// The `ε` clause.
    pub fn epsilon() -> Self {
        Self::default()
    }

    /// Whether this is the `ε` clause.
    pub fn is_epsilon(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether any literal is a Kleene closure.
    pub fn has_closure(&self) -> bool {
        self.literals.iter().any(Literal::is_closure)
    }

    /// Converts the clause back to a regular expression.
    pub fn to_regex(&self) -> Regex {
        Regex::concat(self.literals.iter().map(Literal::to_regex).collect())
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_regex())
    }
}

/// Converts `r` to DNF with the default clause budget.
pub fn to_dnf(r: &Regex) -> Result<Vec<Clause>, DnfError> {
    to_dnf_with_limit(r, DEFAULT_CLAUSE_LIMIT)
}

/// Converts `r` to DNF, failing if more than `limit` clauses would result.
///
/// The returned clause list is duplicate-free and preserves first-produced
/// order (left alternative first), which keeps evaluation order predictable.
pub fn to_dnf_with_limit(r: &Regex, limit: usize) -> Result<Vec<Clause>, DnfError> {
    let mut clauses = convert(r, limit)?;
    dedup_preserving_order(&mut clauses);
    Ok(clauses)
}

fn convert(r: &Regex, limit: usize) -> Result<Vec<Clause>, DnfError> {
    let out = match r {
        Regex::Empty => vec![],
        Regex::Epsilon => vec![Clause::epsilon()],
        Regex::Label(l) => vec![Clause {
            literals: vec![Literal::Label(l.clone())],
        }],
        Regex::Plus(inner) => vec![Clause {
            literals: vec![Literal::Closure {
                inner: (**inner).clone(),
                kind: ClosureKind::Plus,
            }],
        }],
        Regex::Star(inner) => vec![Clause {
            literals: vec![Literal::Closure {
                inner: (**inner).clone(),
                kind: ClosureKind::Star,
            }],
        }],
        Regex::Optional(inner) => {
            let mut clauses = convert(inner, limit)?;
            clauses.push(Clause::epsilon());
            clauses
        }
        Regex::Alt(parts) => {
            let mut clauses = Vec::new();
            for p in parts {
                clauses.extend(convert(p, limit)?);
                if clauses.len() > limit {
                    return Err(DnfError::TooManyClauses { limit });
                }
            }
            clauses
        }
        Regex::Concat(parts) => {
            let mut acc = vec![Clause::epsilon()];
            for p in parts {
                let rhs = convert(p, limit)?;
                if acc.len().saturating_mul(rhs.len()) > limit {
                    return Err(DnfError::TooManyClauses { limit });
                }
                let mut next = Vec::with_capacity(acc.len() * rhs.len());
                for a in &acc {
                    for b in &rhs {
                        let mut literals = Vec::with_capacity(a.literals.len() + b.literals.len());
                        literals.extend(a.literals.iter().cloned());
                        literals.extend(b.literals.iter().cloned());
                        next.push(Clause { literals });
                    }
                }
                acc = next;
            }
            acc
        }
    };
    if out.len() > limit {
        return Err(DnfError::TooManyClauses { limit });
    }
    Ok(out)
}

fn dedup_preserving_order(clauses: &mut Vec<Clause>) {
    let mut seen: Vec<Clause> = Vec::with_capacity(clauses.len());
    clauses.retain(|c| {
        if seen.contains(c) {
            false
        } else {
            seen.push(c.clone());
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dnf_strings(src: &str) -> Vec<String> {
        let r = Regex::parse(src).unwrap();
        to_dnf(&r).unwrap().iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn label_is_single_clause() {
        assert_eq!(dnf_strings("a"), vec!["a"]);
    }

    #[test]
    fn epsilon_is_single_empty_clause() {
        let r = Regex::Epsilon;
        let d = to_dnf(&r).unwrap();
        assert_eq!(d.len(), 1);
        assert!(d[0].is_epsilon());
    }

    #[test]
    fn empty_language_has_no_clauses() {
        assert!(to_dnf(&Regex::Empty).unwrap().is_empty());
    }

    #[test]
    fn alternation_splits_into_clauses() {
        assert_eq!(dnf_strings("a|b.c|d+"), vec!["a", "b.c", "d+"]);
    }

    #[test]
    fn concat_distributes_over_alt() {
        assert_eq!(dnf_strings("(a|b).c"), vec!["a.c", "b.c"]);
        assert_eq!(dnf_strings("a.(b|c)"), vec!["a.b", "a.c"]);
        assert_eq!(dnf_strings("(a|b).(c|d)"), vec!["a.c", "a.d", "b.c", "b.d"]);
    }

    #[test]
    fn outermost_closure_is_opaque_literal() {
        // (a|b)+ must NOT be distributed — the closure body stays intact.
        let d = dnf_strings("(a|b)+");
        assert_eq!(d, vec!["(a|b)+"]);
        let r = Regex::parse("(a|b)+").unwrap();
        let clauses = to_dnf(&r).unwrap();
        assert_eq!(clauses.len(), 1);
        assert!(clauses[0].has_closure());
        match &clauses[0].literals[0] {
            Literal::Closure { inner, kind } => {
                assert_eq!(*kind, ClosureKind::Plus);
                assert_eq!(inner, &Regex::parse("a|b").unwrap());
            }
            other => panic!("expected closure literal, got {other:?}"),
        }
    }

    #[test]
    fn option_expands_to_clause_plus_epsilon() {
        let r = Regex::parse("a?").unwrap();
        let d = to_dnf(&r).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].to_string(), "a");
        assert!(d[1].is_epsilon());
    }

    #[test]
    fn option_inside_concat() {
        assert_eq!(dnf_strings("a.b?.c"), vec!["a.b.c", "a.c"]);
    }

    #[test]
    fn paper_batch_unit_shape() {
        // d·(b·c)+·c is one clause: [d, (b·c)+, c].
        let r = Regex::parse("d.(b.c)+.c").unwrap();
        let d = to_dnf(&r).unwrap();
        assert_eq!(d.len(), 1);
        let lits = &d[0].literals;
        assert_eq!(lits.len(), 3);
        assert_eq!(lits[0], Literal::Label("d".into()));
        assert!(lits[1].is_closure());
        assert_eq!(lits[2], Literal::Label("c".into()));
    }

    #[test]
    fn nested_closures_stay_in_literal() {
        // (a·b+·c)+ from Example 7 is one literal with a nested closure.
        let r = Regex::parse("(a.b+.c)+").unwrap();
        let d = to_dnf(&r).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].literals.len(), 1);
        match &d[0].literals[0] {
            Literal::Closure { inner, .. } => assert!(inner.has_closure()),
            other => panic!("expected closure, got {other:?}"),
        }
    }

    #[test]
    fn clauses_are_deduplicated() {
        // (a|a.b?) -> a, a.b, a -> dedup to [a, a.b].
        assert_eq!(
            dnf_strings("a|a.b?|a"),
            vec!["a", "a.b", "a"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()[..2]
                .to_vec()
        );
    }

    #[test]
    fn clause_roundtrip_to_regex() {
        let r = Regex::parse("d.(b.c)+.c").unwrap();
        let d = to_dnf(&r).unwrap();
        assert_eq!(d[0].to_regex(), r);
    }

    #[test]
    fn clause_limit_enforced() {
        // (a|b)^12 would be 4096 clauses; with limit 100 it must fail.
        let base = Regex::parse("a|b").unwrap();
        let big = Regex::concat(vec![base; 12]);
        let err = to_dnf_with_limit(&big, 100).unwrap_err();
        assert_eq!(err, DnfError::TooManyClauses { limit: 100 });
        // And with the default limit it succeeds at exactly 4096 clauses.
        assert_eq!(to_dnf(&big).unwrap().len(), 4096);
    }

    #[test]
    fn star_closure_literal_kind() {
        let r = Regex::parse("(a.b)*").unwrap();
        let d = to_dnf(&r).unwrap();
        match &d[0].literals[0] {
            Literal::Closure { kind, .. } => assert_eq!(*kind, ClosureKind::Star),
            other => panic!("expected closure, got {other:?}"),
        }
    }

    #[test]
    fn display_of_literals() {
        assert_eq!(Literal::Label("a".into()).to_string(), "a");
        let c = Literal::Closure {
            inner: Regex::parse("b.c").unwrap(),
            kind: ClosureKind::Plus,
        };
        assert_eq!(c.to_string(), "(b.c)+");
    }
}
