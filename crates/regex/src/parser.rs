//! Recursive-descent parser for the RPQ textual syntax.
//!
//! Grammar (whitespace is insignificant):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := postfix (('.' | '/')? postfix)*      -- separators optional
//! postfix:= atom ('+' | '*' | '?')*
//! atom   := LABEL | '(' alt ')' | '()' | 'ε' | '∅'
//! LABEL  := [A-Za-z0-9_][A-Za-z0-9_-]*  |  '\'' [^']* '\''
//! ```
//!
//! `.` and `/` are interchangeable concatenation operators (the paper uses
//! `·`, SPARQL property paths use `/`); juxtaposition such as `a(b|c)` also
//! concatenates. Quoted labels allow arbitrary characters.

use crate::ast::Regex;
use crate::error::ParseError;

impl Regex {
    /// Parses an RPQ from its textual form.
    ///
    /// ```
    /// use rpq_regex::Regex;
    /// let q = Regex::parse("d.(b.c)+.c").unwrap();
    /// assert_eq!(q.to_string(), "d.(b.c)+.c");
    /// ```
    pub fn parse(input: &str) -> Result<Regex, ParseError> {
        let mut p = Parser::new(input);
        let r = p.parse_alt()?;
        p.skip_ws();
        if let Some((pos, c)) = p.peek() {
            return Err(ParseError::new(pos, format!("unexpected character '{c}'")));
        }
        Ok(r)
    }
}

struct Parser<'a> {
    input: &'a str,
    chars: Vec<(usize, char)>,
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            input,
            chars: input.char_indices().collect(),
            at: 0,
        }
    }

    fn peek(&self) -> Option<(usize, char)> {
        self.chars.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let c = self.peek();
        if c.is_some() {
            self.at += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while let Some((_, c)) = self.peek() {
            if c.is_whitespace() {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn eof_pos(&self) -> usize {
        self.input.len()
    }

    fn parse_alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_concat()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some((_, '|')) => {
                    self.bump();
                    parts.push(self.parse_concat()?);
                }
                _ => break,
            }
        }
        Ok(Regex::alt(parts))
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_postfix()?];
        loop {
            self.skip_ws();
            match self.peek() {
                Some((_, '.')) | Some((_, '/')) => {
                    self.bump();
                    parts.push(self.parse_postfix()?);
                }
                // Juxtaposition: a new atom starts immediately.
                Some((_, c))
                    if is_label_start(c) || c == '(' || c == 'ε' || c == '∅' || c == '\'' =>
                {
                    parts.push(self.parse_postfix()?);
                }
                _ => break,
            }
        }
        Ok(Regex::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<Regex, ParseError> {
        let mut r = self.parse_atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some((_, '+')) => {
                    self.bump();
                    r = Regex::plus(r);
                }
                Some((_, '*')) => {
                    self.bump();
                    r = Regex::star(r);
                }
                Some((_, '?')) => {
                    self.bump();
                    r = Regex::optional(r);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        self.skip_ws();
        match self.peek() {
            None => Err(ParseError::new(self.eof_pos(), "unexpected end of input")),
            Some((pos, '(')) => {
                self.bump();
                self.skip_ws();
                // "()" is ε.
                if let Some((_, ')')) = self.peek() {
                    self.bump();
                    return Ok(Regex::Epsilon);
                }
                let inner = self.parse_alt()?;
                self.skip_ws();
                match self.bump() {
                    Some((_, ')')) => Ok(inner),
                    Some((p, c)) => Err(ParseError::new(p, format!("expected ')', found '{c}'"))),
                    None => Err(ParseError::new(pos, "unclosed '('")),
                }
            }
            Some((_, 'ε')) => {
                self.bump();
                Ok(Regex::Epsilon)
            }
            Some((_, '∅')) => {
                self.bump();
                Ok(Regex::Empty)
            }
            Some((pos, '\'')) => {
                self.bump();
                let start = self.at;
                while let Some((_, c)) = self.peek() {
                    if c == '\'' {
                        break;
                    }
                    self.bump();
                }
                match self.peek() {
                    Some((_, '\'')) => {
                        let label: String =
                            self.chars[start..self.at].iter().map(|&(_, c)| c).collect();
                        self.bump();
                        if label.is_empty() {
                            Err(ParseError::new(pos, "empty quoted label"))
                        } else {
                            Ok(Regex::Label(label))
                        }
                    }
                    _ => Err(ParseError::new(pos, "unclosed quoted label")),
                }
            }
            Some((pos, c)) if is_label_start(c) => {
                let start = self.at;
                while let Some((_, c)) = self.peek() {
                    if is_label_continue(c) {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let label: String = self.chars[start..self.at].iter().map(|&(_, c)| c).collect();
                debug_assert!(!label.is_empty(), "label at {pos} must be non-empty");
                Ok(Regex::Label(label))
            }
            Some((pos, c)) => Err(ParseError::new(pos, format!("unexpected character '{c}'"))),
        }
    }
}

fn is_label_start(c: char) -> bool {
    c.is_alphanumeric() && c != 'ε' && c != '∅' || c == '_'
}

fn is_label_continue(c: char) -> bool {
    c.is_alphanumeric() && c != 'ε' && c != '∅' || c == '_' || c == '-'
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ClosureKind;

    fn lab(s: &str) -> Regex {
        Regex::label(s)
    }

    #[test]
    fn single_label() {
        assert_eq!(Regex::parse("a").unwrap(), lab("a"));
        assert_eq!(Regex::parse("  knows ").unwrap(), lab("knows"));
        assert_eq!(Regex::parse("l42").unwrap(), lab("l42"));
    }

    #[test]
    fn concatenation_with_dot_slash_and_juxtaposition() {
        let expect = Regex::concat(vec![lab("a"), lab("b")]);
        assert_eq!(Regex::parse("a.b").unwrap(), expect);
        assert_eq!(Regex::parse("a/b").unwrap(), expect);
        assert_eq!(Regex::parse("a (b)").unwrap(), expect);
        assert_eq!(Regex::parse("(a)(b)").unwrap(), expect);
    }

    #[test]
    fn alternation_and_precedence() {
        let r = Regex::parse("a|b.c").unwrap();
        assert_eq!(
            r,
            Regex::alt(vec![lab("a"), Regex::concat(vec![lab("b"), lab("c")])])
        );
        let r = Regex::parse("(a|b).c").unwrap();
        assert_eq!(
            r,
            Regex::concat(vec![Regex::alt(vec![lab("a"), lab("b")]), lab("c")])
        );
    }

    #[test]
    fn postfix_operators() {
        assert_eq!(Regex::parse("a+").unwrap(), Regex::plus(lab("a")));
        assert_eq!(Regex::parse("a*").unwrap(), Regex::star(lab("a")));
        assert_eq!(Regex::parse("a?").unwrap(), Regex::optional(lab("a")));
        // Stacked postfix normalizes: a+* = a*.
        assert_eq!(Regex::parse("a+*").unwrap(), Regex::star(lab("a")));
    }

    #[test]
    fn paper_example_queries() {
        // The three queries of Example 7.
        let q1 = Regex::parse("a").unwrap();
        assert_eq!(q1, lab("a"));

        let q2 = Regex::parse("a.(a.b)+.b").unwrap();
        assert_eq!(
            q2,
            Regex::concat(vec![
                lab("a"),
                Regex::plus(Regex::concat(vec![lab("a"), lab("b")])),
                lab("b"),
            ])
        );

        let q3 = Regex::parse("(a.b)*.b+.(a.b+.c)+").unwrap();
        assert_eq!(
            q3,
            Regex::concat(vec![
                Regex::star(Regex::concat(vec![lab("a"), lab("b")])),
                Regex::plus(lab("b")),
                Regex::plus(Regex::concat(vec![
                    lab("a"),
                    Regex::plus(lab("b")),
                    lab("c"),
                ])),
            ])
        );
        assert_eq!(
            Regex::closure(lab("x"), ClosureKind::Plus),
            Regex::plus(lab("x"))
        );
    }

    #[test]
    fn epsilon_and_empty() {
        assert_eq!(Regex::parse("()").unwrap(), Regex::Epsilon);
        assert_eq!(Regex::parse("ε").unwrap(), Regex::Epsilon);
        assert_eq!(Regex::parse("∅").unwrap(), Regex::Empty);
        assert_eq!(Regex::parse("a.()").unwrap(), lab("a"));
        assert_eq!(Regex::parse("a|∅").unwrap(), lab("a"));
    }

    #[test]
    fn quoted_labels() {
        assert_eq!(Regex::parse("'has part'").unwrap(), lab("has part"));
        let r = Regex::parse("'x.y'.'z'").unwrap();
        assert_eq!(r, Regex::concat(vec![lab("x.y"), lab("z")]));
    }

    #[test]
    fn whitespace_insensitive() {
        assert_eq!(
            Regex::parse(" d . ( b . c ) + . c ").unwrap(),
            Regex::parse("d.(b.c)+.c").unwrap()
        );
    }

    #[test]
    fn error_unclosed_paren() {
        let e = Regex::parse("(a.b").unwrap_err();
        assert!(e.message.contains("unclosed"), "{e}");
    }

    #[test]
    fn error_unexpected_char() {
        assert!(Regex::parse("a..b").is_err());
        assert!(Regex::parse("|a").is_err());
        assert!(Regex::parse("a)").is_err());
        assert!(Regex::parse("+").is_err());
        assert!(Regex::parse("").is_err());
        assert!(Regex::parse("'unclosed").is_err());
        assert!(Regex::parse("''").is_err());
    }

    #[test]
    fn error_position_is_meaningful() {
        let e = Regex::parse("ab c d !").unwrap_err();
        assert_eq!(e.position, 7);
    }

    #[test]
    fn display_parse_roundtrip() {
        for src in [
            "a",
            "a.b.c",
            "a|b|c",
            "(a|b).c",
            "d.(b.c)+.c",
            "(a.b)*.b+.(a.b+.c)+",
            "a?",
            "(a|b.c)*",
            "a.(b|c)+.d",
        ] {
            let r = Regex::parse(src).unwrap();
            let printed = r.to_string();
            let reparsed = Regex::parse(&printed).unwrap();
            assert_eq!(r, reparsed, "roundtrip failed for {src} -> {printed}");
        }
    }

    #[test]
    fn hyphen_and_underscore_labels() {
        assert_eq!(Regex::parse("has_part").unwrap(), lab("has_part"));
        assert_eq!(Regex::parse("x-y").unwrap(), lab("x-y"));
        // Hyphen cannot start a label.
        assert!(Regex::parse("-x").is_err());
    }
}
