//! Property-based tests on the graph substrate.

use proptest::prelude::*;
use rpq_graph::bfs::reachable_ge1_alloc;
use rpq_graph::{tarjan_scc, Condensation, Csr, Digraph, GraphBuilder, SccId};

fn arb_edges(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tarjan produces a partition of the vertex set.
    #[test]
    fn tarjan_partitions_vertices(edges in arb_edges(24, 80)) {
        let g = Digraph::from_edges(24, edges);
        let scc = tarjan_scc(&g);
        let mut seen = [false; 24];
        for (_, members) in scc.iter() {
            for &m in members {
                prop_assert!(!seen[m as usize], "vertex {m} in two SCCs");
                seen[m as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// SCC ids are reverse-topological: cross edges always descend.
    #[test]
    fn tarjan_reverse_topological(edges in arb_edges(20, 70)) {
        let g = Digraph::from_edges(20, edges);
        let scc = tarjan_scc(&g);
        for (s, d) in g.edges() {
            let (cs, cd) = (scc.component_of(s), scc.component_of(d));
            if cs != cd {
                prop_assert!(cd < cs, "edge {s}->{d}: {cd} !< {cs}");
            }
        }
    }

    /// Two vertices share an SCC iff they reach each other (via ≥1 edges or
    /// by being the same vertex).
    #[test]
    fn scc_membership_matches_mutual_reachability(edges in arb_edges(12, 50)) {
        let g = Digraph::from_edges(12, edges);
        let scc = tarjan_scc(&g);
        let reach: Vec<Vec<u32>> = (0..12).map(|v| reachable_ge1_alloc(&g, v)).collect();
        for a in 0..12u32 {
            for b in 0..12u32 {
                let same = scc.component_of(a) == scc.component_of(b);
                let mutual = a == b
                    || (reach[a as usize].binary_search(&b).is_ok()
                        && reach[b as usize].binary_search(&a).is_ok());
                prop_assert_eq!(same, mutual, "a={}, b={}", a, b);
            }
        }
    }

    /// Condensation self-loops exactly mark SCCs with internal edges.
    #[test]
    fn condensation_self_loop_rule(edges in arb_edges(16, 60)) {
        let g = Digraph::from_edges(16, edges);
        let scc = tarjan_scc(&g);
        let cond = Condensation::new(&g, &scc);
        for s in 0..scc.count() as u32 {
            let has_internal = g
                .edges()
                .any(|(a, b)| scc.component_of(a) == SccId(s) && scc.component_of(b) == SccId(s));
            prop_assert_eq!(cond.has_self_loop(SccId(s)), has_internal, "scc {}", s);
        }
    }

    /// Csr::from_items agrees with building rows directly.
    #[test]
    fn csr_from_items_equivalence(items in prop::collection::vec((0usize..8, 0u32..100), 0..60)) {
        let csr = Csr::from_items(8, items.clone());
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); 8];
        for (r, v) in items {
            rows[r].push(v);
        }
        for (r, expected) in rows.iter().enumerate() {
            prop_assert_eq!(csr.row(r), &expected[..], "row {}", r);
        }
        prop_assert_eq!(csr.len(), rows.iter().map(Vec::len).sum::<usize>());
    }

    /// Digraph reversal is an involution and preserves edge count.
    #[test]
    fn reverse_involution(edges in arb_edges(16, 60)) {
        let g = Digraph::from_edges(16, edges);
        let rr = g.reverse().reverse();
        prop_assert_eq!(&g, &rr);
        prop_assert_eq!(g.edge_count(), g.reverse().edge_count());
    }

    /// The multigraph builder is insensitive to edge insertion order.
    #[test]
    fn builder_order_insensitive(mut triples in prop::collection::vec((0u32..10, 0usize..3, 0u32..10), 0..40)) {
        let labels = ["a", "b", "c"];
        let build = |ts: &[(u32, usize, u32)]| {
            let mut b = GraphBuilder::new();
            b.ensure_vertices(10);
            for &(s, l, d) in ts {
                b.add_edge(s, labels[l], d);
            }
            b.build()
        };
        let g1 = build(&triples);
        triples.reverse();
        let g2 = build(&triples);
        prop_assert_eq!(g1.edge_count(), g2.edge_count());
        // Label *ids* depend on first-seen interning order; compare edges
        // by label name instead.
        let by_name = |g: &rpq_graph::LabeledMultigraph| {
            let mut edges: Vec<(u32, String, u32)> = g
                .all_edges()
                .map(|(s, l, d)| (s.raw(), g.labels().name(l).to_owned(), d.raw()))
                .collect();
            edges.sort();
            edges
        };
        prop_assert_eq!(by_name(&g1), by_name(&g2));
    }
}
