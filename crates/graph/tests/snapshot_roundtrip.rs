//! Property-based tests of the binary snapshot format: random graph +
//! random mutation history → bytes → graph preserves every observable
//! (edges, labels, vertex count, epoch), and random corruption never
//! round-trips silently.

use proptest::prelude::*;
use rpq_graph::{snapshot, GraphBuilder, GraphDelta, LabeledMultigraph, VersionedGraph};

const LABELS: [&str; 5] = ["a", "b", "c", "knows", "öäü-label"];

fn arb_triples(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, usize, u32)>> {
    prop::collection::vec((0..n, 0..LABELS.len(), 0..n), 0..max_edges)
}

/// (is_insert, src, label index, dst) mutation script entries. The
/// vendored proptest shim has no `any::<bool>()`, so insert/delete is
/// drawn as `0..2`.
fn arb_mutations(n: u32, max_ops: usize) -> impl Strategy<Value = Vec<(u8, u32, usize, u32)>> {
    prop::collection::vec((0u8..2, 0..n, 0..LABELS.len(), 0..n), 0..max_ops)
}

fn build(base: &[(u32, usize, u32)], min_vertices: usize) -> LabeledMultigraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(min_vertices);
    for &(s, l, d) in base {
        b.add_edge(s, LABELS[l], d);
    }
    b.build()
}

fn assert_same_graph(a: &LabeledMultigraph, b: &LabeledMultigraph) {
    assert_eq!(a.vertex_count(), b.vertex_count());
    assert_eq!(a.edge_count(), b.edge_count());
    assert_eq!(a.label_count(), b.label_count());
    for (l, name) in a.labels().iter() {
        assert_eq!(b.labels().name(l), name);
        assert_eq!(a.edges_with_label(l), b.edges_with_label(l));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snapshot round-trip preserves edges, labels, vertex count, epoch —
    /// after an arbitrary mutation history (which exercises emptied label
    /// rows, isolated vertices and nonzero epochs).
    #[test]
    fn roundtrip_preserves_everything(
        base in arb_triples(24, 60),
        mutations in arb_mutations(24, 40),
        min_vertices in 0usize..30,
        batch in 1usize..5,
    ) {
        let mut vg = VersionedGraph::new(build(&base, min_vertices));
        let mut expected_epoch = 0u64;
        for chunk in mutations.chunks(batch) {
            let mut delta = GraphDelta::new();
            for &(ins, s, l, d) in chunk {
                if ins == 1 {
                    delta.insert(s, LABELS[l], d);
                } else {
                    delta.delete(s, LABELS[l], d);
                }
            }
            vg.apply(&delta);
            expected_epoch += 1;
        }
        prop_assert_eq!(vg.epoch(), expected_epoch);

        let mut bytes = Vec::new();
        snapshot::write_snapshot(&vg, &mut bytes).unwrap();
        let back = snapshot::read_snapshot(&bytes[..]).unwrap();
        prop_assert_eq!(back.epoch(), vg.epoch());
        assert_same_graph(back.graph(), vg.graph());

        // And the round-trip is a fixpoint: re-serializing the restored
        // graph yields identical bytes.
        let mut bytes2 = Vec::new();
        snapshot::write_snapshot(&back, &mut bytes2).unwrap();
        prop_assert_eq!(bytes, bytes2);
    }

    /// Every strict prefix of a valid snapshot is rejected as truncated —
    /// no prefix parses as a (smaller) graph.
    #[test]
    fn truncation_never_roundtrips(
        base in arb_triples(12, 25),
        cut_frac in 0.0f64..1.0,
    ) {
        let vg = VersionedGraph::new(build(&base, 0));
        let mut bytes = Vec::new();
        snapshot::write_snapshot(&vg, &mut bytes).unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize; // < len: strict prefix
        prop_assert!(snapshot::read_snapshot(&bytes[..cut]).is_err());
    }

    /// Flipping any single byte is either detected as an error or yields
    /// a *structurally valid* graph — reading never panics, and the happy
    /// path is only reachable for flips that keep the format coherent.
    #[test]
    fn corruption_is_handled_not_panicked(
        base in arb_triples(12, 25),
        at_frac in 0.0f64..1.0,
        flip in 1u16..256,
    ) {
        let flip = flip as u8;
        let vg = VersionedGraph::new(build(&base, 0));
        let mut bytes = Vec::new();
        snapshot::write_snapshot(&vg, &mut bytes).unwrap();
        let at = ((bytes.len() - 1) as f64 * at_frac) as usize;
        bytes[at] ^= flip;
        match snapshot::read_snapshot(&bytes[..]) {
            Err(_) => {} // detected
            Ok(g) => {
                // A surviving flip (e.g. inside an unused high byte that
                // still decodes consistently) must still be a coherent
                // graph: counts agree with the rows.
                let total: usize = (0..g.graph().label_count())
                    .map(|l| g.graph().edges_with_label(rpq_graph::LabelId::from_usize(l)).len())
                    .sum();
                prop_assert_eq!(total, g.graph().edge_count());
            }
        }
    }
}
