//! Hybrid sparse/dense vertex-set rows with word-parallel set algebra.
//!
//! A [`RowSet`] is a set of `u32` ids stored either as a **sorted vector**
//! (`Sparse`) or as a **bitset** (`Dense`). Dense rows union, intersect and
//! subtract 64 elements per instruction and count via `popcnt`; sparse rows
//! pay per element but cost only `4·len` bytes. The break-even density is
//! roughly `1/16`–`1/32` of the universe (a dense row costs `universe/8`
//! bytes against the sparse row's `4·len`), which is why the default
//! [`RowSetPolicy`] promotes a row to dense once it holds more than
//! `universe/32` elements and demotes below that.
//!
//! Closure tables ([`crate::Csr`]'s successor in `rpq_reduction`) hold one
//! `RowSet` per source; [`crate::PairSet`] reuses the same rows for its
//! grouped-by-start backing, so a dense SCC-level closure row is shared
//! untouched from construction through expansion to the final result set.

use std::fmt;

/// Default promotion threshold: a row denser than `universe/32` becomes a
/// bitset. At exactly `1/32` the two representations cost the same memory
/// within a factor of ~1 (`universe/8` vs `4·universe/32`); the dense side
/// wins on every set operation from there up.
pub const DEFAULT_CROSSOVER: f64 = 1.0 / 32.0;

/// Which representation new and normalized rows take.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReprMode {
    /// Promote/demote per row by the density crossover (the default).
    Adaptive,
    /// Keep every row a sorted vector (the pre-hybrid behavior).
    ForceSparse,
    /// Promote every non-empty row to a bitset.
    ForceDense,
}

/// Tunable representation policy: mode plus the adaptive density crossover.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RowSetPolicy {
    /// Representation mode.
    pub mode: ReprMode,
    /// Density (`len / universe`) at or above which `Adaptive` promotes.
    pub crossover: f64,
}

impl Default for RowSetPolicy {
    fn default() -> Self {
        Self {
            mode: ReprMode::Adaptive,
            crossover: DEFAULT_CROSSOVER,
        }
    }
}

impl RowSetPolicy {
    /// The adaptive policy with the default crossover.
    pub fn adaptive() -> Self {
        Self::default()
    }

    /// Every row sparse.
    pub fn sparse() -> Self {
        Self {
            mode: ReprMode::ForceSparse,
            ..Self::default()
        }
    }

    /// Every non-empty row dense.
    pub fn dense() -> Self {
        Self {
            mode: ReprMode::ForceDense,
            ..Self::default()
        }
    }

    /// Reads the mode from the `RPQ_REPR` environment variable
    /// (`sparse` / `dense` / `adaptive`, case-insensitive), falling back to
    /// the default adaptive policy when unset or unrecognized. This is how
    /// CI's forced-representation test legs steer every engine in a test
    /// binary without threading a flag through each constructor.
    pub fn from_env_or_default() -> Self {
        match std::env::var("RPQ_REPR").as_deref() {
            Ok(s) if s.eq_ignore_ascii_case("sparse") => Self::sparse(),
            Ok(s) if s.eq_ignore_ascii_case("dense") => Self::dense(),
            _ => Self::default(),
        }
    }

    /// Whether a row of `len` elements over `universe` ids should be dense.
    #[inline]
    pub fn wants_dense(&self, len: usize, universe: u32) -> bool {
        match self.mode {
            ReprMode::ForceSparse => false,
            ReprMode::ForceDense => len > 0,
            ReprMode::Adaptive => {
                len > 0 && universe > 0 && (len as f64) >= self.crossover * universe as f64
            }
        }
    }
}

/// A bitset row: `words[i] bit b` ⇔ id `64·i + b` is present. The universe
/// is implicit (`64 · words.len()`); trailing zero words are permitted and
/// ignored by comparisons.
#[derive(Clone, Default)]
pub struct DenseRow {
    words: Vec<u64>,
    len: u32,
}

impl DenseRow {
    #[inline]
    fn word_of(id: u32) -> usize {
        (id / 64) as usize
    }

    #[inline]
    fn mask_of(id: u32) -> u64 {
        1u64 << (id % 64)
    }

    fn grow_to(&mut self, words: usize) {
        if self.words.len() < words {
            self.words.resize(words, 0);
        }
    }

    fn recount(&mut self) {
        self.len = self.words.iter().map(|w| w.count_ones()).sum();
    }

    /// Set bits ascending.
    fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(wi as u32 * 64 + b)
                }
            })
        })
    }
}

/// A hybrid set of `u32` ids: sorted vector or bitset, with value
/// semantics independent of the representation (`PartialEq`/`Eq` compare
/// contents, never the backing).
#[derive(Clone)]
pub enum RowSet {
    /// Strictly ascending ids.
    Sparse(Vec<u32>),
    /// Word-parallel bitset.
    Dense(DenseRow),
}

impl Default for RowSet {
    fn default() -> Self {
        RowSet::Sparse(Vec::new())
    }
}

impl RowSet {
    /// The empty set (sparse; promotes on demand).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A one-element set.
    pub fn singleton(id: u32) -> Self {
        RowSet::Sparse(vec![id])
    }

    /// Builds from a strictly ascending vector without copying.
    ///
    /// Debug-asserts sortedness/uniqueness — feeding unsorted data is a
    /// logic error upstream.
    pub fn from_sorted_vec(ids: Vec<u32>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "row must be sorted");
        RowSet::Sparse(ids)
    }

    /// Builds from arbitrary ids: sorts and dedups.
    pub fn from_unsorted(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        RowSet::Sparse(ids)
    }

    /// Builds a dense row directly from set bits over `universe` ids.
    pub fn dense_from_iter(universe: u32, ids: impl IntoIterator<Item = u32>) -> Self {
        let mut row = DenseRow {
            words: vec![0; (universe as usize).div_ceil(64)],
            len: 0,
        };
        for id in ids {
            row.grow_to(DenseRow::word_of(id) + 1);
            row.words[DenseRow::word_of(id)] |= DenseRow::mask_of(id);
        }
        row.recount();
        RowSet::Dense(row)
    }

    /// Builds a dense row directly from its bitset words (the snapshot
    /// deserialization path); the element count is recomputed by `popcnt`.
    pub fn dense_from_words(words: Vec<u64>) -> Self {
        let mut row = DenseRow { words, len: 0 };
        row.recount();
        RowSet::Dense(row)
    }

    /// The bitset words of a dense row (`None` for sparse) — the snapshot
    /// serialization path.
    pub fn as_dense_words(&self) -> Option<&[u64]> {
        match self {
            RowSet::Sparse(_) => None,
            RowSet::Dense(d) => Some(&d.words),
        }
    }

    /// Number of elements (`popcnt` on dense rows, cached).
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            RowSet::Sparse(v) => v.len(),
            RowSet::Dense(d) => d.len as usize,
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the backing is the dense bitset.
    #[inline]
    pub fn is_dense(&self) -> bool {
        matches!(self, RowSet::Dense(_))
    }

    /// Membership test: binary search (sparse) or bit probe (dense).
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        match self {
            RowSet::Sparse(v) => v.binary_search(&id).is_ok(),
            RowSet::Dense(d) => d
                .words
                .get(DenseRow::word_of(id))
                .is_some_and(|w| w & DenseRow::mask_of(id) != 0),
        }
    }

    /// Largest element, if any.
    pub fn max(&self) -> Option<u32> {
        match self {
            RowSet::Sparse(v) => v.last().copied(),
            RowSet::Dense(d) => d
                .words
                .iter()
                .enumerate()
                .rev()
                .find_map(|(wi, &w)| (w != 0).then(|| wi as u32 * 64 + 63 - w.leading_zeros())),
        }
    }

    /// Inserts `id`; returns whether the set changed.
    pub fn insert(&mut self, id: u32) -> bool {
        match self {
            RowSet::Sparse(v) => match v.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, id);
                    true
                }
            },
            RowSet::Dense(d) => {
                d.grow_to(DenseRow::word_of(id) + 1);
                let w = &mut d.words[DenseRow::word_of(id)];
                let mask = DenseRow::mask_of(id);
                if *w & mask != 0 {
                    false
                } else {
                    *w |= mask;
                    d.len += 1;
                    true
                }
            }
        }
    }

    /// Removes `id`; returns whether the set changed.
    pub fn remove(&mut self, id: u32) -> bool {
        match self {
            RowSet::Sparse(v) => match v.binary_search(&id) {
                Ok(pos) => {
                    v.remove(pos);
                    true
                }
                Err(_) => false,
            },
            RowSet::Dense(d) => {
                let Some(w) = d.words.get_mut(DenseRow::word_of(id)) else {
                    return false;
                };
                let mask = DenseRow::mask_of(id);
                if *w & mask == 0 {
                    false
                } else {
                    *w &= !mask;
                    d.len -= 1;
                    true
                }
            }
        }
    }

    /// Elements ascending, regardless of representation.
    pub fn iter(&self) -> RowIter<'_> {
        match self {
            RowSet::Sparse(v) => RowIter::Sparse(v.iter()),
            RowSet::Dense(d) => RowIter::Dense {
                words: &d.words,
                word_idx: 0,
                bits: d.words.first().copied().unwrap_or(0),
            },
        }
    }

    /// Materializes the elements as a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        match self {
            RowSet::Sparse(v) => v.clone(),
            RowSet::Dense(d) => d.iter().collect(),
        }
    }

    /// `self ∪= other`; returns whether `self` changed.
    ///
    /// Dense ∪= dense is a word-parallel OR. Dense is contagious: a sparse
    /// `self` unioned with a dense `other` promotes, so adaptive pipelines
    /// never fall back to element-at-a-time merges once a dense row enters.
    pub fn union_in_place(&mut self, other: &RowSet) -> bool {
        if other.is_empty() {
            return false;
        }
        if self.is_empty() && !self.is_dense() {
            *self = other.clone();
            return true;
        }
        match (&mut *self, other) {
            (RowSet::Dense(d), RowSet::Dense(o)) => {
                d.grow_to(o.words.len());
                let mut changed = false;
                for (dw, &ow) in d.words.iter_mut().zip(&o.words) {
                    let merged = *dw | ow;
                    changed |= merged != *dw;
                    *dw = merged;
                }
                if changed {
                    d.recount();
                }
                changed
            }
            (RowSet::Dense(d), RowSet::Sparse(o)) => {
                let mut changed = false;
                for &id in o {
                    d.grow_to(DenseRow::word_of(id) + 1);
                    let w = &mut d.words[DenseRow::word_of(id)];
                    let mask = DenseRow::mask_of(id);
                    if *w & mask == 0 {
                        *w |= mask;
                        d.len += 1;
                        changed = true;
                    }
                }
                changed
            }
            (RowSet::Sparse(_), RowSet::Dense(_)) => {
                let universe = self.max().max(other.max()).map_or(0, |m| m + 1);
                self.promote(universe);
                self.union_in_place(other)
            }
            (RowSet::Sparse(v), RowSet::Sparse(o)) => union_sorted_in_place(v, o),
        }
    }

    /// `self ∪ other` as a new set. Dense if either side is dense.
    pub fn union(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        out.union_in_place(other);
        out
    }

    /// `self ∩ other` as a new set (dense if `self` is dense).
    pub fn intersect(&self, other: &RowSet) -> RowSet {
        match (self, other) {
            (RowSet::Dense(a), RowSet::Dense(b)) => {
                let mut d = DenseRow {
                    words: a.words.iter().zip(&b.words).map(|(&x, &y)| x & y).collect(),
                    len: 0,
                };
                d.recount();
                RowSet::Dense(d)
            }
            (RowSet::Sparse(a), _) => {
                RowSet::Sparse(a.iter().copied().filter(|&x| other.contains(x)).collect())
            }
            (RowSet::Dense(_), RowSet::Sparse(b)) => RowSet::dense_from_iter(
                b.last().map_or(0, |&m| m + 1),
                b.iter().copied().filter(|&x| self.contains(x)),
            ),
        }
    }

    /// `self \ other` as a new set (dense if `self` is dense).
    pub fn difference(&self, other: &RowSet) -> RowSet {
        let mut out = self.clone();
        out.difference_in_place(other);
        out
    }

    /// `self \= other` (word-masking `AND NOT` when both are dense);
    /// returns whether `self` changed.
    pub fn difference_in_place(&mut self, other: &RowSet) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        match (&mut *self, other) {
            (RowSet::Dense(d), RowSet::Dense(o)) => {
                let mut changed = false;
                for (dw, &ow) in d.words.iter_mut().zip(&o.words) {
                    let masked = *dw & !ow;
                    changed |= masked != *dw;
                    *dw = masked;
                }
                if changed {
                    d.recount();
                }
                changed
            }
            (RowSet::Dense(_), RowSet::Sparse(o)) => {
                let mut changed = false;
                for &id in o {
                    changed |= self.remove(id);
                }
                changed
            }
            (RowSet::Sparse(v), _) => {
                let before = v.len();
                v.retain(|&x| !other.contains(x));
                v.len() != before
            }
        }
    }

    /// Fraction of the universe present (`len / universe`); 0 for an empty
    /// universe.
    pub fn density(&self, universe: u32) -> f64 {
        if universe == 0 {
            0.0
        } else {
            self.len() as f64 / universe as f64
        }
    }

    /// Re-represents the row per `policy` against `universe` (promote to
    /// dense at/above the crossover, demote below; forced modes override).
    /// An empty row always demotes to sparse.
    pub fn normalize(&mut self, universe: u32, policy: &RowSetPolicy) {
        let universe = universe.max(self.max().map_or(0, |m| m + 1));
        if policy.wants_dense(self.len(), universe) {
            self.promote(universe);
        } else {
            self.demote();
        }
    }

    /// Forces the dense representation sized for `universe`.
    pub fn promote(&mut self, universe: u32) {
        if let RowSet::Sparse(v) = self {
            *self = RowSet::dense_from_iter(universe, v.iter().copied());
        }
    }

    /// Forces the sparse representation.
    pub fn demote(&mut self) {
        if let RowSet::Dense(d) = self {
            *self = RowSet::Sparse(d.iter().collect());
        }
    }

    /// Heap footprint in bytes (capacity, not just length — this is what
    /// the allocator is actually holding).
    pub fn heap_bytes(&self) -> usize {
        match self {
            RowSet::Sparse(v) => v.capacity() * std::mem::size_of::<u32>(),
            RowSet::Dense(d) => d.words.capacity() * std::mem::size_of::<u64>(),
        }
    }
}

/// Merges sorted `other` into sorted `dst` **in place**: counts the
/// elements of `other` missing from `dst`, extends once, and merges
/// backward so no scratch vector is allocated. Returns whether `dst` grew.
fn union_sorted_in_place(dst: &mut Vec<u32>, other: &[u32]) -> bool {
    debug_assert!(dst.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(other.windows(2).all(|w| w[0] < w[1]));
    // Count how many of `other`'s elements are new.
    let mut fresh = 0usize;
    {
        let mut i = 0;
        for &x in other {
            while i < dst.len() && dst[i] < x {
                i += 1;
            }
            if i >= dst.len() || dst[i] != x {
                fresh += 1;
            }
        }
    }
    if fresh == 0 {
        return false;
    }
    let old_len = dst.len();
    dst.resize(old_len + fresh, 0);
    // Backward merge: read cursors at the old ends, write cursor at the new.
    let (mut i, mut j, mut w) = (old_len, other.len(), dst.len());
    while j > 0 {
        if i > 0 && dst[i - 1] > other[j - 1] {
            dst[w - 1] = dst[i - 1];
            i -= 1;
        } else {
            if i > 0 && dst[i - 1] == other[j - 1] {
                i -= 1;
            }
            dst[w - 1] = other[j - 1];
            j -= 1;
        }
        w -= 1;
    }
    while i > 0 {
        dst[w - 1] = dst[i - 1];
        i -= 1;
        w -= 1;
    }
    debug_assert_eq!(w, i);
    true
}

impl PartialEq for RowSet {
    /// Content equality, independent of representation: a dense row equals
    /// the sparse row with the same elements.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (RowSet::Sparse(a), RowSet::Sparse(b)) => a == b,
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for RowSet {}

impl fmt::Debug for RowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = if self.is_dense() { "Dense" } else { "Sparse" };
        write!(f, "RowSet::{tag}")?;
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<u32> for RowSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        RowSet::from_unsorted(iter.into_iter().collect())
    }
}

/// Ascending iterator over a [`RowSet`]'s elements.
pub enum RowIter<'a> {
    /// Sparse backing: slice iteration.
    Sparse(std::slice::Iter<'a, u32>),
    /// Dense backing: `trailing_zeros` walk over the words.
    Dense {
        /// The bitset words.
        words: &'a [u64],
        /// Index of the word currently being drained.
        word_idx: usize,
        /// Remaining bits of the current word.
        bits: u64,
    },
}

impl Iterator for RowIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            RowIter::Sparse(it) => it.next().copied(),
            RowIter::Dense {
                words,
                word_idx,
                bits,
            } => loop {
                if *bits != 0 {
                    let b = bits.trailing_zeros();
                    *bits &= *bits - 1;
                    return Some(*word_idx as u32 * 64 + b);
                }
                if *word_idx + 1 >= words.len() {
                    return None;
                }
                *word_idx += 1;
                *bits = words[*word_idx];
            },
        }
    }
}

/// A table of [`RowSet`] rows over a shared universe — the hybrid
/// replacement for a `Csr<u32>` closure table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RowTable {
    rows: Vec<RowSet>,
    universe: u32,
}

impl RowTable {
    /// Builds from rows over ids `< universe`.
    pub fn from_rows(rows: Vec<RowSet>, universe: u32) -> Self {
        Self { rows, universe }
    }

    /// Builds by normalizing each row per `policy`.
    pub fn from_rows_with(mut rows: Vec<RowSet>, universe: u32, policy: &RowSetPolicy) -> Self {
        for row in &mut rows {
            row.normalize(universe, policy);
        }
        Self { rows, universe }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The id universe rows range over.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &RowSet {
        &self.rows[i]
    }

    /// All rows in order.
    pub fn iter(&self) -> std::slice::Iter<'_, RowSet> {
        self.rows.iter()
    }

    /// Total elements across rows.
    pub fn total_len(&self) -> usize {
        self.rows.iter().map(RowSet::len).sum()
    }

    /// Number of rows currently dense.
    pub fn dense_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.is_dense()).count()
    }

    /// Heap footprint in bytes across all rows.
    pub fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<RowSet>()
            + self.rows.iter().map(RowSet::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(ids: &[u32]) -> RowSet {
        RowSet::from_sorted_vec(ids.to_vec())
    }

    fn dense(ids: &[u32]) -> RowSet {
        let universe = ids.iter().max().map_or(0, |&m| m + 1);
        RowSet::dense_from_iter(universe, ids.iter().copied())
    }

    #[test]
    fn contains_len_iter_agree_across_reprs() {
        let ids = [0u32, 5, 63, 64, 65, 200];
        for r in [sparse(&ids), dense(&ids)] {
            assert_eq!(r.len(), ids.len());
            assert!(!r.is_empty());
            for &x in &ids {
                assert!(r.contains(x));
            }
            assert!(!r.contains(66));
            assert!(!r.contains(100_000)); // beyond any dense word
            assert_eq!(r.iter().collect::<Vec<_>>(), ids);
            assert_eq!(r.to_vec(), ids);
            assert_eq!(r.max(), Some(200));
        }
    }

    #[test]
    fn semantic_equality_across_representations() {
        let ids = [1u32, 64, 120];
        assert_eq!(sparse(&ids), dense(&ids));
        assert_eq!(dense(&ids), sparse(&ids));
        assert_ne!(sparse(&ids), dense(&[1, 64]));
        // A dense row with trailing zero words still equals its sparse twin.
        let mut padded = dense(&ids);
        if let RowSet::Dense(d) = &mut padded {
            d.words.resize(10, 0);
        }
        assert_eq!(padded, sparse(&ids));
    }

    #[test]
    fn insert_and_remove_both_reprs() {
        for mut r in [sparse(&[2, 4]), dense(&[2, 4])] {
            assert!(r.insert(3));
            assert!(!r.insert(3));
            assert!(r.insert(1000)); // dense row must grow its words
            assert_eq!(r.to_vec(), vec![2, 3, 4, 1000]);
            assert!(r.remove(2));
            assert!(!r.remove(2));
            assert!(!r.remove(999));
            assert_eq!(r.to_vec(), vec![3, 4, 1000]);
            assert_eq!(r.len(), 3);
        }
    }

    #[test]
    fn union_in_place_all_repr_pairs() {
        let a = [1u32, 5, 70];
        let b = [0u32, 5, 64, 200];
        let want: Vec<u32> = vec![0, 1, 5, 64, 70, 200];
        for lhs in [sparse(&a), dense(&a)] {
            for rhs in [sparse(&b), dense(&b)] {
                let mut r = lhs.clone();
                assert!(r.union_in_place(&rhs));
                assert_eq!(r.to_vec(), want, "{lhs:?} ∪ {rhs:?}");
                assert_eq!(r.len(), want.len());
                // Unioning again changes nothing.
                assert!(!r.union_in_place(&rhs));
            }
        }
    }

    #[test]
    fn union_with_empty_and_into_empty() {
        let a = dense(&[3, 9]);
        let mut empty = RowSet::empty();
        assert!(empty.union_in_place(&a));
        assert_eq!(empty, a);
        let mut a2 = a.clone();
        assert!(!a2.union_in_place(&RowSet::empty()));
        assert_eq!(a2, a);
    }

    #[test]
    fn intersect_all_repr_pairs() {
        let a = [1u32, 5, 64, 70];
        let b = [5u32, 64, 200];
        for lhs in [sparse(&a), dense(&a)] {
            for rhs in [sparse(&b), dense(&b)] {
                let r = lhs.intersect(&rhs);
                assert_eq!(r.to_vec(), vec![5, 64], "{lhs:?} ∩ {rhs:?}");
            }
        }
    }

    #[test]
    fn difference_all_repr_pairs() {
        let a = [1u32, 5, 64, 70];
        let b = [5u32, 64, 200];
        for lhs in [sparse(&a), dense(&a)] {
            for rhs in [sparse(&b), dense(&b)] {
                let r = lhs.difference(&rhs);
                assert_eq!(r.to_vec(), vec![1, 70], "{lhs:?} \\ {rhs:?}");
                let mut in_place = lhs.clone();
                assert!(in_place.difference_in_place(&rhs));
                assert_eq!(in_place.to_vec(), vec![1, 70]);
                assert!(!in_place.difference_in_place(&rhs));
            }
        }
    }

    #[test]
    fn union_sorted_in_place_reuses_the_allocation() {
        let mut v = Vec::with_capacity(16);
        v.extend([1u32, 3, 5, 9]);
        let ptr = v.as_ptr();
        assert!(union_sorted_in_place(&mut v, &[0, 3, 6, 9, 12]));
        assert_eq!(v, vec![0, 1, 3, 5, 6, 9, 12]);
        // Capacity was sufficient: no reallocation happened.
        assert_eq!(v.as_ptr(), ptr);
        // Subset union: untouched.
        assert!(!union_sorted_in_place(&mut v, &[1, 9]));
        assert_eq!(v, vec![0, 1, 3, 5, 6, 9, 12]);
    }

    #[test]
    fn promotion_demotion_roundtrip_preserves_contents() {
        let ids = [0u32, 31, 32, 99];
        let mut r = sparse(&ids);
        r.promote(100);
        assert!(r.is_dense());
        assert_eq!(r.to_vec(), ids);
        r.demote();
        assert!(!r.is_dense());
        assert_eq!(r.to_vec(), ids);
    }

    #[test]
    fn normalize_follows_the_policy() {
        let adaptive = RowSetPolicy::default();
        // 4 of 1024 ids: density 1/256 < 1/32 → stays sparse.
        let mut thin = sparse(&[1, 2, 3, 4]);
        thin.normalize(1024, &adaptive);
        assert!(!thin.is_dense());
        // 64 of 128 ids: density 1/2 → promotes.
        let mut fat = RowSet::from_unsorted((0..64).map(|x| x * 2).collect());
        fat.normalize(128, &adaptive);
        assert!(fat.is_dense());
        // ...and demotes again under ForceSparse.
        fat.normalize(128, &RowSetPolicy::sparse());
        assert!(!fat.is_dense());
        // ForceDense promotes even the thin row; empty rows never promote.
        thin.normalize(1024, &RowSetPolicy::dense());
        assert!(thin.is_dense());
        let mut empty = RowSet::empty();
        empty.normalize(1024, &RowSetPolicy::dense());
        assert!(!empty.is_dense());
    }

    #[test]
    fn normalize_widens_the_universe_to_cover_max() {
        // Universe hint smaller than the contents: promote must still
        // cover the maximum element.
        let mut r = sparse(&[10, 500]);
        r.normalize(16, &RowSetPolicy::dense());
        assert!(r.is_dense());
        assert!(r.contains(500));
    }

    #[test]
    fn policy_wants_dense_boundaries() {
        let p = RowSetPolicy::default();
        // Exactly at the crossover: 32 of 1024 = 1/32 → dense.
        assert!(p.wants_dense(32, 1024));
        assert!(!p.wants_dense(31, 1024));
        assert!(!p.wants_dense(0, 1024));
        assert!(!RowSetPolicy::sparse().wants_dense(1024, 1024));
        assert!(RowSetPolicy::dense().wants_dense(1, 1 << 30));
        assert!(!RowSetPolicy::dense().wants_dense(0, 64));
    }

    #[test]
    fn heap_bytes_reflects_the_representation() {
        let ids: Vec<u32> = (0..128).collect();
        let s = RowSet::from_sorted_vec(ids.clone());
        let d = RowSet::dense_from_iter(128, ids);
        assert_eq!(s.heap_bytes(), 128 * 4);
        assert_eq!(d.heap_bytes(), 2 * 8); // 128 bits = 2 words
        assert_eq!(RowSet::empty().heap_bytes(), 0);
    }

    #[test]
    fn row_table_accounting() {
        let rows = vec![sparse(&[0, 1]), dense(&[0, 1, 2, 3]), RowSet::empty()];
        let t = RowTable::from_rows(rows, 4);
        assert_eq!(t.len(), 3);
        assert_eq!(t.universe(), 4);
        assert_eq!(t.total_len(), 6);
        assert_eq!(t.dense_rows(), 1);
        assert_eq!(t.row(1).len(), 4);
        assert!(t.heap_bytes() >= 2 * 4 + 8);
        let forced = RowTable::from_rows_with(
            vec![sparse(&[0, 1]), sparse(&[2])],
            4,
            &RowSetPolicy::dense(),
        );
        assert_eq!(forced.dense_rows(), 2);
        assert_eq!(
            forced,
            RowTable::from_rows(vec![sparse(&[0, 1]), sparse(&[2])], 4)
        );
    }

    #[test]
    fn from_env_parses_modes() {
        // Exercise the parser directly (env vars are process-global; tests
        // must not set them), via the same match arms.
        assert_eq!(RowSetPolicy::sparse().mode, ReprMode::ForceSparse);
        assert_eq!(RowSetPolicy::dense().mode, ReprMode::ForceDense);
        assert_eq!(RowSetPolicy::default().mode, ReprMode::Adaptive);
    }

    #[test]
    fn debug_formats_show_repr_and_contents() {
        assert_eq!(format!("{:?}", sparse(&[1, 2])), "RowSet::Sparse{1, 2}");
        assert_eq!(format!("{:?}", dense(&[1, 2])), "RowSet::Dense{1, 2}");
    }
}
