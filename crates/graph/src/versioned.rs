//! The versioned mutation layer: [`GraphDelta`] batches and the
//! epoch-stamped [`VersionedGraph`].
//!
//! The paper builds `G` once and shares closures across queries; a serving
//! engine must additionally survive edge churn. This module is the
//! graph-side half of that story: a [`GraphDelta`] collects edge
//! insertions/deletions (interning label names delta-locally, so a delta
//! can introduce labels the graph has never seen), and a
//! [`VersionedGraph`] applies deltas in place — `O(touched rows)` per
//! edge, not a rebuild — while bumping a monotonically increasing *epoch*.
//! Downstream caches (`rpq_core::SharedCache`) compare their entries'
//! build epoch against the graph epoch to detect staleness instead of
//! silently serving closures of a graph that no longer exists.
//!
//! Semantics pinned here (and relied on by the incremental RTC
//! maintenance in `rpq_reduction`):
//!
//! * deletions apply **before** insertions within one delta, so a triple
//!   both deleted and inserted in the same delta ends up present;
//! * vertex ids and label ids never shrink or shift — deleting the last
//!   edge of a vertex/label leaves the id allocated (isolated);
//! * applying an empty delta still advances the epoch (callers can use
//!   this as an explicit invalidation barrier).

use crate::ids::{LabelId, VertexId};
use crate::multigraph::LabeledMultigraph;
use rustc_hash::FxHashMap;

/// A batch of edge insertions and deletions against a labeled multigraph.
///
/// Labels are named by string and interned *delta-locally*: the mapping to
/// graph [`LabelId`]s happens at apply time, so a delta built against one
/// graph snapshot stays meaningful for later snapshots (and can introduce
/// brand-new labels).
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    /// Delta-local label table, in first-use order.
    labels: Vec<String>,
    label_index: FxHashMap<String, u32>,
    /// `(src, local label, dst)` triples to insert.
    inserts: Vec<(u32, u32, u32)>,
    /// `(src, local label, dst)` triples to delete.
    deletes: Vec<(u32, u32, u32)>,
    min_vertices: usize,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues insertion of edge `e(src, label, dst)`.
    pub fn insert(&mut self, src: u32, label: &str, dst: u32) -> &mut Self {
        let l = self.intern(label);
        self.inserts.push((src, l, dst));
        self
    }

    /// Queues deletion of edge `e(src, label, dst)`.
    pub fn delete(&mut self, src: u32, label: &str, dst: u32) -> &mut Self {
        let l = self.intern(label);
        self.deletes.push((src, l, dst));
        self
    }

    /// Declares that the graph must have at least `n` vertices after the
    /// delta is applied (isolated-vertex growth, mirroring
    /// [`crate::GraphBuilder::ensure_vertices`]).
    pub fn ensure_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Number of queued insertions.
    pub fn insert_count(&self) -> usize {
        self.inserts.len()
    }

    /// Number of queued deletions.
    pub fn delete_count(&self) -> usize {
        self.deletes.len()
    }

    /// Total queued operations (`|delta|`).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the delta queues no operations and no vertex growth.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.min_vertices == 0
    }

    /// The distinct label names this delta mentions, in first-use order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(String::as_str)
    }

    /// Iterates queued insertions as `(src, label name, dst)`.
    pub fn inserts(&self) -> impl Iterator<Item = (u32, &str, u32)> {
        self.inserts
            .iter()
            .map(move |&(s, l, d)| (s, self.labels[l as usize].as_str(), d))
    }

    /// Iterates queued deletions as `(src, label name, dst)`.
    pub fn deletes(&self) -> impl Iterator<Item = (u32, &str, u32)> {
        self.deletes
            .iter()
            .map(move |&(s, l, d)| (s, self.labels[l as usize].as_str(), d))
    }

    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&l) = self.label_index.get(label) {
            return l;
        }
        let l = self.labels.len() as u32;
        self.labels.push(label.to_owned());
        self.label_index.insert(label.to_owned(), l);
        l
    }
}

/// What [`VersionedGraph::apply`] actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// The epoch the graph is at after this delta.
    pub epoch: u64,
    /// Insertions that created a new edge (duplicates of existing edges
    /// are no-ops and not counted).
    pub edges_inserted: usize,
    /// Deletions that removed an existing edge (deletes of absent edges
    /// are no-ops and not counted).
    pub edges_deleted: usize,
    /// Labels the graph had never seen before this delta.
    pub new_labels: usize,
    /// Vertices added to the vertex set (ids past the old `|V|`).
    pub new_vertices: usize,
}

/// A mutable labeled multigraph with a monotonically increasing epoch.
///
/// Every applied delta — even an empty one — advances the epoch by one, so
/// `epoch()` is a complete version stamp: two reads with the same epoch
/// observed the same graph.
///
/// ```
/// use rpq_graph::{GraphBuilder, GraphDelta, VersionedGraph, VertexId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, "a", 1);
/// let mut g = VersionedGraph::new(b.build());
/// assert_eq!(g.epoch(), 0);
///
/// let mut delta = GraphDelta::new();
/// delta.insert(1, "b", 2).delete(0, "a", 1);
/// let summary = g.apply(&delta);
/// assert_eq!(summary.epoch, 1);
/// assert_eq!(summary.edges_inserted, 1);
/// assert_eq!(summary.edges_deleted, 1);
/// assert_eq!(g.graph().edge_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct VersionedGraph {
    graph: LabeledMultigraph,
    epoch: u64,
}

impl VersionedGraph {
    /// Wraps a built graph at epoch 0.
    pub fn new(graph: LabeledMultigraph) -> Self {
        Self { graph, epoch: 0 }
    }

    /// Wraps a graph at an explicit epoch — the deserialization path of
    /// [`crate::snapshot`], where the restored graph must keep the epoch
    /// it was saved at so caches stamped before the save stay *fresh*
    /// rather than restarting the epoch clock at 0.
    pub fn restore(graph: LabeledMultigraph, epoch: u64) -> Self {
        Self { graph, epoch }
    }

    /// The current graph snapshot.
    #[inline]
    pub fn graph(&self) -> &LabeledMultigraph {
        &self.graph
    }

    /// The current epoch (0 = as built, +1 per applied delta).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies `delta` in place: deletions first, then insertions, then
    /// vertex growth. Advances the epoch by one and reports what changed.
    ///
    /// Cost is `O(Σ touched-row lengths)` over the `|delta|` edges — the
    /// graph is never rebuilt.
    pub fn apply(&mut self, delta: &GraphDelta) -> DeltaSummary {
        let old_vertices = self.graph.vertex_count();
        let old_labels = self.graph.label_count();
        // Resolve delta-local labels against the graph's dictionary,
        // interning new names (deletes of unknown labels intern too — the
        // alphabet is append-only and the delete itself is a no-op).
        let label_map: Vec<LabelId> = delta
            .labels
            .iter()
            .map(|name| self.graph.intern_label_mut(name))
            .collect();

        let mut summary = DeltaSummary::default();
        for &(s, l, d) in &delta.deletes {
            if self
                .graph
                .remove_edge_raw(VertexId(s), label_map[l as usize], VertexId(d))
            {
                summary.edges_deleted += 1;
            }
        }
        for &(s, l, d) in &delta.inserts {
            if self
                .graph
                .insert_edge_raw(VertexId(s), label_map[l as usize], VertexId(d))
            {
                summary.edges_inserted += 1;
            }
        }
        self.graph.grow_vertices(delta.min_vertices);

        self.epoch += 1;
        summary.epoch = self.epoch;
        summary.new_labels = self.graph.label_count() - old_labels;
        summary.new_vertices = self.graph.vertex_count().saturating_sub(old_vertices);
        summary
    }

    /// Consumes the wrapper, returning the graph at its final state.
    pub fn into_graph(self) -> LabeledMultigraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::GraphBuilder;

    fn base() -> LabeledMultigraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1)
            .add_edge(1, "b", 2)
            .add_edge(2, "a", 0);
        b.build()
    }

    /// Rebuilds the versioned graph's edge set from scratch with a plain
    /// builder — the oracle every mutation sequence must agree with.
    fn rebuild_oracle(g: &LabeledMultigraph) -> LabeledMultigraph {
        let mut b = GraphBuilder::new();
        b.ensure_vertices(g.vertex_count());
        for name in g
            .labels()
            .iter()
            .map(|(_, n)| n.to_owned())
            .collect::<Vec<_>>()
        {
            b.intern_label(&name);
        }
        for (s, l, d) in g.all_edges() {
            b.add_edge(s.raw(), g.labels().name(l), d.raw());
        }
        b.build()
    }

    fn assert_same_graph(a: &LabeledMultigraph, b: &LabeledMultigraph) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.vertices() {
            assert_eq!(a.out_edges(v), b.out_edges(v), "out row of {v}");
            assert_eq!(a.in_edges(v), b.in_edges(v), "in row of {v}");
        }
        for (l, _) in a.labels().iter() {
            assert_eq!(a.edges_with_label(l), b.edges_with_label(l), "label {l}");
        }
    }

    #[test]
    fn epoch_advances_per_delta() {
        let mut g = VersionedGraph::new(base());
        assert_eq!(g.epoch(), 0);
        g.apply(&GraphDelta::new());
        assert_eq!(g.epoch(), 1);
        let mut d = GraphDelta::new();
        d.insert(0, "c", 2);
        g.apply(&d);
        assert_eq!(g.epoch(), 2);
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let mut g = VersionedGraph::new(base());
        let mut d = GraphDelta::new();
        d.insert(2, "b", 1).insert(0, "a", 1); // second is a duplicate
        let s = g.apply(&d);
        assert_eq!(s.edges_inserted, 1);
        assert_eq!(g.graph().edge_count(), 4);

        let mut d = GraphDelta::new();
        d.delete(2, "b", 1).delete(9, "zz", 9); // second is absent
        let s = g.apply(&d);
        assert_eq!(s.edges_deleted, 1);
        assert_eq!(g.graph().edge_count(), 3);
        assert_same_graph(g.graph(), &rebuild_oracle(g.graph()));
    }

    #[test]
    fn delete_then_reinsert_in_one_delta_keeps_edge() {
        let mut g = VersionedGraph::new(base());
        let mut d = GraphDelta::new();
        d.delete(0, "a", 1).insert(0, "a", 1);
        let s = g.apply(&d);
        assert_eq!((s.edges_deleted, s.edges_inserted), (1, 1));
        let a = g.graph().labels().get("a").unwrap();
        assert!(g.graph().has_edge(VertexId(0), a, VertexId(1)));
    }

    #[test]
    fn new_labels_and_vertices_are_reported() {
        let mut g = VersionedGraph::new(base());
        let mut d = GraphDelta::new();
        d.insert(5, "knows", 6).ensure_vertices(9);
        let s = g.apply(&d);
        assert_eq!(s.new_labels, 1);
        assert_eq!(s.new_vertices, 6); // 3 -> 9
        assert_eq!(g.graph().vertex_count(), 9);
        assert!(g.graph().labels().get("knows").is_some());
        assert_same_graph(g.graph(), &rebuild_oracle(g.graph()));
    }

    #[test]
    fn deleting_last_edge_keeps_vertex_and_label_ids() {
        let mut g = VersionedGraph::new(base());
        let b_id = g.graph().labels().get("b").unwrap();
        let mut d = GraphDelta::new();
        d.delete(1, "b", 2);
        g.apply(&d);
        assert_eq!(g.graph().vertex_count(), 3);
        assert_eq!(g.graph().labels().get("b"), Some(b_id));
        assert!(g.graph().edges_with_label(b_id).is_empty());
    }

    #[test]
    fn mutation_sequence_matches_rebuild() {
        let mut g = VersionedGraph::new(base());
        let script: &[(&str, u32, &str, u32)] = &[
            ("ins", 0, "c", 2),
            ("ins", 3, "a", 0),
            ("del", 1, "b", 2),
            ("ins", 2, "c", 2), // self-loop
            ("del", 0, "a", 1),
            ("ins", 0, "a", 1), // reinsert
            ("del", 2, "a", 0),
        ];
        for &(op, s, l, d) in script {
            let mut delta = GraphDelta::new();
            if op == "ins" {
                delta.insert(s, l, d);
            } else {
                delta.delete(s, l, d);
            }
            g.apply(&delta);
            assert_same_graph(g.graph(), &rebuild_oracle(g.graph()));
        }
        assert_eq!(g.epoch(), script.len() as u64);
    }

    #[test]
    fn delta_accessors() {
        let mut d = GraphDelta::new();
        assert!(d.is_empty());
        d.insert(0, "a", 1).delete(1, "b", 2).insert(2, "a", 3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.insert_count(), 2);
        assert_eq!(d.delete_count(), 1);
        assert_eq!(d.labels().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(
            d.inserts().collect::<Vec<_>>(),
            vec![(0, "a", 1), (2, "a", 3)]
        );
        assert_eq!(d.deletes().collect::<Vec<_>>(), vec![(1, "b", 2)]);
    }
}
