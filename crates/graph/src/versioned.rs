//! The versioned mutation layer: [`GraphDelta`] batches and the
//! epoch-stamped [`VersionedGraph`].
//!
//! The paper builds `G` once and shares closures across queries; a serving
//! engine must additionally survive edge churn. This module is the
//! graph-side half of that story: a [`GraphDelta`] collects edge
//! insertions/deletions (interning label names delta-locally, so a delta
//! can introduce labels the graph has never seen), and a
//! [`VersionedGraph`] applies deltas in place — `O(touched rows)` per
//! edge, not a rebuild — while bumping a monotonically increasing *epoch*.
//! Downstream caches (`rpq_core::SharedCache`) compare their entries'
//! build epoch against the graph epoch to detect staleness instead of
//! silently serving closures of a graph that no longer exists.
//!
//! Semantics pinned here (and relied on by the incremental RTC
//! maintenance in `rpq_reduction`):
//!
//! * deletions apply **before** insertions within one delta, so a triple
//!   both deleted and inserted in the same delta ends up present;
//! * vertex ids and label ids never shrink or shift — deleting the last
//!   edge of a vertex/label leaves the id allocated (isolated);
//! * applying an empty delta still advances the epoch (callers can use
//!   this as an explicit invalidation barrier).

use crate::ids::{LabelId, VertexId};
use crate::multigraph::LabeledMultigraph;
use rustc_hash::FxHashMap;
use std::sync::{Arc, Mutex};

/// A batch of edge insertions and deletions against a labeled multigraph.
///
/// Labels are named by string and interned *delta-locally*: the mapping to
/// graph [`LabelId`]s happens at apply time, so a delta built against one
/// graph snapshot stays meaningful for later snapshots (and can introduce
/// brand-new labels).
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    /// Delta-local label table, in first-use order.
    labels: Vec<String>,
    label_index: FxHashMap<String, u32>,
    /// `(src, local label, dst)` triples to insert.
    inserts: Vec<(u32, u32, u32)>,
    /// `(src, local label, dst)` triples to delete.
    deletes: Vec<(u32, u32, u32)>,
    min_vertices: usize,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues insertion of edge `e(src, label, dst)`.
    pub fn insert(&mut self, src: u32, label: &str, dst: u32) -> &mut Self {
        let l = self.intern(label);
        self.inserts.push((src, l, dst));
        self
    }

    /// Queues deletion of edge `e(src, label, dst)`.
    pub fn delete(&mut self, src: u32, label: &str, dst: u32) -> &mut Self {
        let l = self.intern(label);
        self.deletes.push((src, l, dst));
        self
    }

    /// Declares that the graph must have at least `n` vertices after the
    /// delta is applied (isolated-vertex growth, mirroring
    /// [`crate::GraphBuilder::ensure_vertices`]).
    pub fn ensure_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Number of queued insertions.
    pub fn insert_count(&self) -> usize {
        self.inserts.len()
    }

    /// Number of queued deletions.
    pub fn delete_count(&self) -> usize {
        self.deletes.len()
    }

    /// Total queued operations (`|delta|`).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Whether the delta queues no operations and no vertex growth.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty() && self.min_vertices == 0
    }

    /// The distinct label names this delta mentions, in first-use order.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.labels.iter().map(String::as_str)
    }

    /// Iterates queued insertions as `(src, label name, dst)`.
    pub fn inserts(&self) -> impl Iterator<Item = (u32, &str, u32)> {
        self.inserts
            .iter()
            .map(move |&(s, l, d)| (s, self.labels[l as usize].as_str(), d))
    }

    /// Iterates queued deletions as `(src, label name, dst)`.
    pub fn deletes(&self) -> impl Iterator<Item = (u32, &str, u32)> {
        self.deletes
            .iter()
            .map(move |&(s, l, d)| (s, self.labels[l as usize].as_str(), d))
    }

    fn intern(&mut self, label: &str) -> u32 {
        if let Some(&l) = self.label_index.get(label) {
            return l;
        }
        let l = self.labels.len() as u32;
        self.labels.push(label.to_owned());
        self.label_index.insert(label.to_owned(), l);
        l
    }
}

/// What [`VersionedGraph::apply`] actually did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// The epoch the graph is at after this delta.
    pub epoch: u64,
    /// Insertions that created a new edge (duplicates of existing edges
    /// are no-ops and not counted).
    pub edges_inserted: usize,
    /// Deletions that removed an existing edge (deletes of absent edges
    /// are no-ops and not counted).
    pub edges_deleted: usize,
    /// Labels the graph had never seen before this delta.
    pub new_labels: usize,
    /// Vertices added to the vertex set (ids past the old `|V|`).
    pub new_vertices: usize,
}

/// An immutable snapshot of a [`VersionedGraph`] at one epoch.
///
/// Produced by [`VersionedGraph::freeze`]. The contained graph shares its
/// adjacency rows with the live graph through reference counting, so a
/// view costs `O(|V| + |Σ|)` pointer bumps to create and holds the rows
/// alive for as long as any reader pins it — later mutations copy only
/// the rows they touch (copy-on-write) and can never be observed here.
#[derive(Clone, Debug)]
pub struct GraphView {
    graph: LabeledMultigraph,
    epoch: u64,
}

impl GraphView {
    /// Wraps a graph snapshot at an explicit epoch.
    pub fn new(graph: LabeledMultigraph, epoch: u64) -> Self {
        Self { graph, epoch }
    }

    /// The frozen graph. Immutable: no `&mut` access exists to a view.
    #[inline]
    pub fn graph(&self) -> &LabeledMultigraph {
        &self.graph
    }

    /// The epoch this view was frozen at.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// A mutable labeled multigraph with a monotonically increasing epoch.
///
/// Every applied delta — even an empty one — advances the epoch by one, so
/// `epoch()` is a complete version stamp: two reads with the same epoch
/// observed the same graph.
///
/// ```
/// use rpq_graph::{GraphBuilder, GraphDelta, VersionedGraph, VertexId};
///
/// let mut b = GraphBuilder::new();
/// b.add_edge(0, "a", 1);
/// let mut g = VersionedGraph::new(b.build());
/// assert_eq!(g.epoch(), 0);
///
/// let mut delta = GraphDelta::new();
/// delta.insert(1, "b", 2).delete(0, "a", 1);
/// let summary = g.apply(&delta);
/// assert_eq!(summary.epoch, 1);
/// assert_eq!(summary.edges_inserted, 1);
/// assert_eq!(summary.edges_deleted, 1);
/// assert_eq!(g.graph().edge_count(), 1);
/// ```
#[derive(Debug)]
pub struct VersionedGraph {
    graph: LabeledMultigraph,
    epoch: u64,
    /// Memoized frozen view of the current epoch, so repeated `freeze()`
    /// calls between deltas return the same `Arc` instead of re-cloning
    /// the row tables. Invalidated by `apply`.
    frozen: Mutex<Option<Arc<GraphView>>>,
}

impl Clone for VersionedGraph {
    fn clone(&self) -> Self {
        Self {
            graph: self.graph.clone(),
            epoch: self.epoch,
            frozen: Mutex::new(None),
        }
    }
}

impl VersionedGraph {
    /// Wraps a built graph at epoch 0.
    pub fn new(graph: LabeledMultigraph) -> Self {
        Self::restore(graph, 0)
    }

    /// Wraps a graph at an explicit epoch — the deserialization path of
    /// [`crate::snapshot`], where the restored graph must keep the epoch
    /// it was saved at so caches stamped before the save stay *fresh*
    /// rather than restarting the epoch clock at 0.
    pub fn restore(graph: LabeledMultigraph, epoch: u64) -> Self {
        Self {
            graph,
            epoch,
            frozen: Mutex::new(None),
        }
    }

    /// An immutable view of the graph at the current epoch.
    ///
    /// The first freeze after a delta clones the row *tables* — `O(|V| +
    /// |Σ|)` reference bumps, no row data — and memoizes the view; further
    /// freezes at the same epoch just bump one `Arc`. Later `apply` calls
    /// copy-on-write only the rows they touch, so holding a view pins at
    /// most the rows that have since been dirtied plus the shared rest.
    pub fn freeze(&self) -> Arc<GraphView> {
        let mut slot = self.frozen.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(view) = slot.as_ref() {
            debug_assert_eq!(view.epoch, self.epoch, "stale frozen-view memo");
            return Arc::clone(view);
        }
        let view = Arc::new(GraphView::new(self.graph.clone(), self.epoch));
        *slot = Some(Arc::clone(&view));
        view
    }

    /// The current graph snapshot.
    #[inline]
    pub fn graph(&self) -> &LabeledMultigraph {
        &self.graph
    }

    /// The current epoch (0 = as built, +1 per applied delta).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Applies `delta` in place: deletions first, then insertions, then
    /// vertex growth. Advances the epoch by one and reports what changed.
    ///
    /// Cost is `O(Σ touched-row lengths)` over the `|delta|` edges — the
    /// graph is never rebuilt.
    pub fn apply(&mut self, delta: &GraphDelta) -> DeltaSummary {
        // The epoch is about to move: drop the memoized view so the next
        // `freeze()` re-snapshots. Readers holding the old `Arc` keep it.
        *self.frozen.get_mut().unwrap_or_else(|e| e.into_inner()) = None;
        let old_vertices = self.graph.vertex_count();
        let old_labels = self.graph.label_count();
        // Resolve delta-local labels against the graph's dictionary,
        // interning new names (deletes of unknown labels intern too — the
        // alphabet is append-only and the delete itself is a no-op).
        let label_map: Vec<LabelId> = delta
            .labels
            .iter()
            .map(|name| self.graph.intern_label_mut(name))
            .collect();

        let mut summary = DeltaSummary::default();
        for &(s, l, d) in &delta.deletes {
            if self
                .graph
                .remove_edge_raw(VertexId(s), label_map[l as usize], VertexId(d))
            {
                summary.edges_deleted += 1;
            }
        }
        for &(s, l, d) in &delta.inserts {
            if self
                .graph
                .insert_edge_raw(VertexId(s), label_map[l as usize], VertexId(d))
            {
                summary.edges_inserted += 1;
            }
        }
        self.graph.grow_vertices(delta.min_vertices);

        self.epoch += 1;
        summary.epoch = self.epoch;
        summary.new_labels = self.graph.label_count() - old_labels;
        summary.new_vertices = self.graph.vertex_count().saturating_sub(old_vertices);
        summary
    }

    /// Consumes the wrapper, returning the graph at its final state.
    pub fn into_graph(self) -> LabeledMultigraph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::GraphBuilder;

    fn base() -> LabeledMultigraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1)
            .add_edge(1, "b", 2)
            .add_edge(2, "a", 0);
        b.build()
    }

    /// Rebuilds the versioned graph's edge set from scratch with a plain
    /// builder — the oracle every mutation sequence must agree with.
    fn rebuild_oracle(g: &LabeledMultigraph) -> LabeledMultigraph {
        let mut b = GraphBuilder::new();
        b.ensure_vertices(g.vertex_count());
        for name in g
            .labels()
            .iter()
            .map(|(_, n)| n.to_owned())
            .collect::<Vec<_>>()
        {
            b.intern_label(&name);
        }
        for (s, l, d) in g.all_edges() {
            b.add_edge(s.raw(), g.labels().name(l), d.raw());
        }
        b.build()
    }

    fn assert_same_graph(a: &LabeledMultigraph, b: &LabeledMultigraph) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        for v in a.vertices() {
            assert_eq!(a.out_edges(v), b.out_edges(v), "out row of {v}");
            assert_eq!(a.in_edges(v), b.in_edges(v), "in row of {v}");
        }
        for (l, _) in a.labels().iter() {
            assert_eq!(a.edges_with_label(l), b.edges_with_label(l), "label {l}");
        }
    }

    #[test]
    fn epoch_advances_per_delta() {
        let mut g = VersionedGraph::new(base());
        assert_eq!(g.epoch(), 0);
        g.apply(&GraphDelta::new());
        assert_eq!(g.epoch(), 1);
        let mut d = GraphDelta::new();
        d.insert(0, "c", 2);
        g.apply(&d);
        assert_eq!(g.epoch(), 2);
    }

    #[test]
    fn insert_and_delete_roundtrip() {
        let mut g = VersionedGraph::new(base());
        let mut d = GraphDelta::new();
        d.insert(2, "b", 1).insert(0, "a", 1); // second is a duplicate
        let s = g.apply(&d);
        assert_eq!(s.edges_inserted, 1);
        assert_eq!(g.graph().edge_count(), 4);

        let mut d = GraphDelta::new();
        d.delete(2, "b", 1).delete(9, "zz", 9); // second is absent
        let s = g.apply(&d);
        assert_eq!(s.edges_deleted, 1);
        assert_eq!(g.graph().edge_count(), 3);
        assert_same_graph(g.graph(), &rebuild_oracle(g.graph()));
    }

    #[test]
    fn delete_then_reinsert_in_one_delta_keeps_edge() {
        let mut g = VersionedGraph::new(base());
        let mut d = GraphDelta::new();
        d.delete(0, "a", 1).insert(0, "a", 1);
        let s = g.apply(&d);
        assert_eq!((s.edges_deleted, s.edges_inserted), (1, 1));
        let a = g.graph().labels().get("a").unwrap();
        assert!(g.graph().has_edge(VertexId(0), a, VertexId(1)));
    }

    #[test]
    fn new_labels_and_vertices_are_reported() {
        let mut g = VersionedGraph::new(base());
        let mut d = GraphDelta::new();
        d.insert(5, "knows", 6).ensure_vertices(9);
        let s = g.apply(&d);
        assert_eq!(s.new_labels, 1);
        assert_eq!(s.new_vertices, 6); // 3 -> 9
        assert_eq!(g.graph().vertex_count(), 9);
        assert!(g.graph().labels().get("knows").is_some());
        assert_same_graph(g.graph(), &rebuild_oracle(g.graph()));
    }

    #[test]
    fn deleting_last_edge_keeps_vertex_and_label_ids() {
        let mut g = VersionedGraph::new(base());
        let b_id = g.graph().labels().get("b").unwrap();
        let mut d = GraphDelta::new();
        d.delete(1, "b", 2);
        g.apply(&d);
        assert_eq!(g.graph().vertex_count(), 3);
        assert_eq!(g.graph().labels().get("b"), Some(b_id));
        assert!(g.graph().edges_with_label(b_id).is_empty());
    }

    #[test]
    fn mutation_sequence_matches_rebuild() {
        let mut g = VersionedGraph::new(base());
        let script: &[(&str, u32, &str, u32)] = &[
            ("ins", 0, "c", 2),
            ("ins", 3, "a", 0),
            ("del", 1, "b", 2),
            ("ins", 2, "c", 2), // self-loop
            ("del", 0, "a", 1),
            ("ins", 0, "a", 1), // reinsert
            ("del", 2, "a", 0),
        ];
        for &(op, s, l, d) in script {
            let mut delta = GraphDelta::new();
            if op == "ins" {
                delta.insert(s, l, d);
            } else {
                delta.delete(s, l, d);
            }
            g.apply(&delta);
            assert_same_graph(g.graph(), &rebuild_oracle(g.graph()));
        }
        assert_eq!(g.epoch(), script.len() as u64);
    }

    #[test]
    fn freeze_is_immutable_and_memoized() {
        let mut g = VersionedGraph::new(base());
        let v0 = g.freeze();
        // Same epoch -> same Arc, no re-clone.
        assert!(Arc::ptr_eq(&v0, &g.freeze()));
        assert_eq!(v0.epoch(), 0);

        let mut d = GraphDelta::new();
        d.insert(0, "c", 2).delete(0, "a", 1);
        g.apply(&d);

        // The pinned view still shows epoch 0's graph, bit for bit.
        assert_eq!(v0.graph().edge_count(), 3);
        let a = v0.graph().labels().get("a").unwrap();
        assert!(v0.graph().has_edge(VertexId(0), a, VertexId(1)));
        assert!(v0.graph().labels().get("c").is_none());
        assert_same_graph(v0.graph(), &rebuild_oracle(v0.graph()));

        // A fresh freeze sees the new epoch; the memo was invalidated.
        let v1 = g.freeze();
        assert!(!Arc::ptr_eq(&v0, &v1));
        assert_eq!(v1.epoch(), 1);
        assert!(!v1.graph().has_edge(VertexId(0), a, VertexId(1)));
    }

    #[test]
    fn freeze_shares_untouched_rows() {
        let mut g = VersionedGraph::new(base());
        let view = g.freeze();
        let mut d = GraphDelta::new();
        d.insert(0, "c", 2);
        g.apply(&d);
        // Vertex 1's rows were untouched by the delta: the live graph and
        // the frozen view must still hand out the very same row storage.
        assert_eq!(
            view.graph().out_edges(VertexId(1)).as_ptr(),
            g.graph().out_edges(VertexId(1)).as_ptr(),
        );
        // Vertex 0's out row was dirtied, so it diverged (copy-on-write).
        assert_ne!(
            view.graph().out_edges(VertexId(0)).as_ptr(),
            g.graph().out_edges(VertexId(0)).as_ptr(),
        );
    }

    #[test]
    fn delta_accessors() {
        let mut d = GraphDelta::new();
        assert!(d.is_empty());
        d.insert(0, "a", 1).delete(1, "b", 2).insert(2, "a", 3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.insert_count(), 2);
        assert_eq!(d.delete_count(), 1);
        assert_eq!(d.labels().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(
            d.inserts().collect::<Vec<_>>(),
            vec![(0, "a", 1), (2, "a", 3)]
        );
        assert_eq!(d.deletes().collect::<Vec<_>>(), vec![(1, "b", 2)]);
    }
}
