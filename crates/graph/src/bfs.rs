//! Breadth-first reachability primitives and reusable visited buffers.
//!
//! Transitive-closure and product-graph traversals run one search per source
//! vertex. Allocating (or zeroing) a fresh visited array per source would
//! cost `O(|V|)` each time; [`EpochVisited`] instead stamps cells with a
//! generation counter so that "clearing" is a single increment — the
//! workhorse-buffer idiom from the performance guide.

use crate::digraph::Digraph;

/// A visited set over `0..n` that clears in O(1) by bumping an epoch.
#[derive(Clone, Debug)]
pub struct EpochVisited {
    stamp: Vec<u32>,
    epoch: u32,
}

impl EpochVisited {
    /// A visited buffer for ids `0..n`, initially all unvisited.
    pub fn new(n: usize) -> Self {
        // Epoch starts at 1 so a fresh buffer (stamps all 0) is usable
        // without a leading `clear()`.
        Self {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    /// Number of addressable ids.
    pub fn len(&self) -> usize {
        self.stamp.len()
    }

    /// Whether the buffer addresses no ids.
    pub fn is_empty(&self) -> bool {
        self.stamp.is_empty()
    }

    /// Starts a new generation; all cells become unvisited.
    #[inline]
    pub fn clear(&mut self) {
        self.epoch += 1;
        if self.epoch == u32::MAX {
            // Epoch wrapped: do the O(n) reset once every 2^32 - 1 clears.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Marks `v` visited; returns `true` if it was not visited before.
    #[inline]
    pub fn insert(&mut self, v: u32) -> bool {
        let cell = &mut self.stamp[v as usize];
        if *cell == self.epoch {
            false
        } else {
            *cell = self.epoch;
            true
        }
    }

    /// Whether `v` is visited in the current generation.
    #[inline]
    pub fn contains(&self, v: u32) -> bool {
        self.stamp[v as usize] == self.epoch
    }
}

/// Vertices reachable from `src` by a path of length ≥ 1, ascending.
///
/// `src` itself is included only when it lies on a cycle (or has a
/// self-loop) — exactly the membership rule of `TC(G_R)` and hence of
/// `R⁺_G` (Lemma 1).
pub fn reachable_ge1(
    g: &Digraph,
    src: u32,
    visited: &mut EpochVisited,
    queue: &mut Vec<u32>,
) -> Vec<u32> {
    debug_assert_eq!(visited.len(), g.vertex_count());
    visited.clear();
    queue.clear();
    let mut out = Vec::new();
    for &w in g.out(src) {
        if visited.insert(w) {
            queue.push(w);
            out.push(w);
        }
    }
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &w in g.out(v) {
            if visited.insert(w) {
                queue.push(w);
                out.push(w);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Convenience wrapper allocating fresh scratch buffers.
pub fn reachable_ge1_alloc(g: &Digraph, src: u32) -> Vec<u32> {
    let mut visited = EpochVisited::new(g.vertex_count());
    let mut queue = Vec::new();
    reachable_ge1(g, src, &mut visited, &mut queue)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_visited_basic() {
        let mut v = EpochVisited::new(4);
        // Fresh buffer is fully unvisited without a leading clear().
        assert!(!v.contains(2));
        assert!(v.insert(2));
        assert!(!v.insert(2));
        assert!(v.contains(2));
        assert!(!v.contains(3));
        v.clear();
        assert!(!v.contains(2));
        assert!(v.insert(2));
    }

    #[test]
    fn epoch_visited_many_generations() {
        let mut v = EpochVisited::new(2);
        for _ in 0..10_000 {
            v.clear();
            assert!(v.insert(0));
            assert!(!v.insert(0));
        }
    }

    #[test]
    fn reachability_excludes_acyclic_source() {
        let g = Digraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        assert_eq!(reachable_ge1_alloc(&g, 0), vec![1, 2, 3]);
        assert_eq!(reachable_ge1_alloc(&g, 3), Vec::<u32>::new());
    }

    #[test]
    fn reachability_includes_source_on_cycle() {
        let g = Digraph::from_edges(3, vec![(0, 1), (1, 0), (1, 2)]);
        assert_eq!(reachable_ge1_alloc(&g, 0), vec![0, 1, 2]);
        assert_eq!(reachable_ge1_alloc(&g, 2), Vec::<u32>::new());
    }

    #[test]
    fn reachability_self_loop() {
        let g = Digraph::from_edges(2, vec![(0, 0)]);
        assert_eq!(reachable_ge1_alloc(&g, 0), vec![0]);
        assert_eq!(reachable_ge1_alloc(&g, 1), Vec::<u32>::new());
    }

    #[test]
    fn scratch_reuse_is_safe() {
        let g = Digraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let mut visited = EpochVisited::new(3);
        let mut queue = Vec::new();
        for src in 0..3 {
            let r = reachable_ge1(&g, src, &mut visited, &mut queue);
            assert_eq!(r, vec![0, 1, 2], "src {src}");
        }
    }
}
