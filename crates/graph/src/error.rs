//! Error type for graph construction.

use std::fmt;

/// Errors raised while building or loading graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a vertex id beyond the declared vertex count.
    VertexOutOfBounds {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices the graph was declared with.
        vertex_count: u32,
    },
    /// A parse error in an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An I/O error message (stringified to keep the error type `Clone + Eq`).
    Io(String),
    /// A malformed, truncated or version-incompatible binary snapshot
    /// (see [`crate::snapshot`]).
    Snapshot(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfBounds {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex v{vertex} out of bounds (graph has {vertex_count} vertices)"
            ),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfBounds {
            vertex: 9,
            vertex_count: 5,
        };
        assert_eq!(
            e.to_string(),
            "vertex v9 out of bounds (graph has 5 vertices)"
        );
        let e = GraphError::Parse {
            line: 3,
            message: "bad label".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: bad label");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
