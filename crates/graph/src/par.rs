//! A hand-rolled scoped-thread worker pool (`std::thread::scope` only —
//! no external dependencies).
//!
//! The closure-construction and batch-evaluation hot paths are
//! embarrassingly parallel: one BFS per vertex, one Cartesian product per
//! SCC, one query per batch slot. This module gives them a single shared
//! primitive: split `0..len` into fixed-size chunks, let workers grab
//! chunks from an atomic counter (dynamic load balancing — BFS and
//! expansion costs are highly skewed across sources), and reassemble the
//! per-chunk results in deterministic index order. Parallel callers
//! therefore produce *bitwise-identical* output to their sequential
//! counterparts, which the property tests in `rpq_reduction` and the
//! facade crate pin down.
//!
//! Worker state (scratch buffers, cache snapshots) is created once per
//! worker via an `init` closure and reused across every chunk that worker
//! processes — the same workhorse-buffer idiom `EpochVisited` exists for.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of threads the host exposes (`available_parallelism`), with a
/// fallback of 1 when the platform cannot tell.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolves a requested thread count: `0` means "all available cores";
/// anything else is taken literally up to a cap of
/// `max(4 × available cores, 8)` — modest oversubscription is harmless
/// (and lets correctness tests exercise multi-worker paths on small
/// hosts), but an absurd request must not translate into thousands of OS
/// threads.
pub fn effective_threads(requested: usize) -> usize {
    let available = available_threads();
    if requested == 0 {
        available
    } else {
        requested.min((available * 4).max(8))
    }
}

/// The half-open range of chunk `i` when `0..len` is cut into `chunk`-sized
/// pieces.
#[inline]
fn chunk_range(i: usize, chunk: usize, len: usize) -> Range<usize> {
    let start = i * chunk;
    start..(start + chunk).min(len)
}

/// Maps chunks of `0..len` through `f` on up to `threads` scoped workers,
/// returning the per-chunk results in chunk order.
///
/// `threads == 0` uses every available core; `threads == 1` (or a single
/// chunk) runs inline with no thread spawned at all, so the sequential
/// fallback has zero overhead.
pub fn par_map_chunks<T, F>(threads: usize, len: usize, chunk: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    par_map_chunks_with(threads, len, chunk, || (), |(), r| f(r))
}

/// [`par_map_chunks`] with per-worker state: `init` runs once on each
/// worker and the resulting state is threaded through every chunk that
/// worker grabs (scratch buffers, visited sets, …).
pub fn par_map_chunks_with<S, T, FS, F>(
    threads: usize,
    len: usize,
    chunk: usize,
    init: FS,
    f: F,
) -> Vec<T>
where
    S: Send,
    T: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, Range<usize>) -> T + Sync,
{
    par_map_chunks_with_state(threads, len, chunk, init, f).0
}

/// [`par_map_chunks_with`] that also returns each worker's final state, in
/// worker order. This is what lets `Engine`'s parallel batch mode merge
/// per-worker caches, timings and counters back into the engine after the
/// fan-out.
pub fn par_map_chunks_with_state<S, T, FS, F>(
    threads: usize,
    len: usize,
    chunk: usize,
    init: FS,
    f: F,
) -> (Vec<T>, Vec<S>)
where
    S: Send,
    T: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, Range<usize>) -> T + Sync,
{
    let chunk = chunk.max(1);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks == 0 {
        return (Vec::new(), Vec::new());
    }
    let threads = effective_threads(threads).min(n_chunks);
    if threads <= 1 {
        let mut state = init();
        let out = (0..n_chunks)
            .map(|i| f(&mut state, chunk_range(i, chunk, len)))
            .collect();
        return (out, vec![state]);
    }

    // Workers pull chunk indices from a shared atomic cursor (dynamic load
    // balancing) and keep `(index, result)` pairs locally; the scope join
    // then scatters them back into chunk order, so the caller sees the
    // exact sequential ordering regardless of scheduling.
    let cursor = AtomicUsize::new(0);
    let per_worker: Vec<(Vec<(usize, T)>, S)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut state = init();
                    let mut out: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_chunks {
                            break;
                        }
                        out.push((i, f(&mut state, chunk_range(i, chunk, len))));
                    }
                    (out, state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
    let mut states = Vec::with_capacity(threads);
    for (results, state) in per_worker {
        for (i, t) in results {
            debug_assert!(slots[i].is_none(), "chunk {i} computed twice");
            slots[i] = Some(t);
        }
        states.push(state);
    }
    let out = slots
        .into_iter()
        .map(|o| o.expect("chunk never scheduled"))
        .collect();
    (out, states)
}

/// A chunk size that gives each worker several chunks to balance across,
/// clamped to `[min, max]` so tiny inputs stay cheap and huge inputs don't
/// serialize behind one oversized chunk.
pub fn balanced_chunk(len: usize, threads: usize, min: usize, max: usize) -> usize {
    (len / (threads.max(1) * 8)).clamp(min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_length_yields_nothing() {
        let (out, states) = par_map_chunks_with_state(4, 0, 8, || 0u32, |_, _| 1u32);
        assert!(out.is_empty());
        assert!(states.is_empty());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        for threads in [1usize, 2, 3, 8] {
            for chunk in [1usize, 3, 7, 100] {
                let out = par_map_chunks(threads, 23, chunk, |r| r.sum::<usize>());
                let expect: Vec<usize> = (0..23usize.div_ceil(chunk))
                    .map(|i| chunk_range(i, chunk, 23).sum::<usize>())
                    .collect();
                assert_eq!(out, expect, "threads={threads} chunk={chunk}");
            }
        }
    }

    #[test]
    fn chunks_cover_the_range_exactly_once() {
        let out = par_map_chunks(4, 100, 7, |r| r.collect::<Vec<usize>>());
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, (0..100).collect::<Vec<usize>>());
    }

    #[test]
    fn worker_state_reused_across_chunks() {
        // Each worker counts how many chunks it processed; the grand total
        // must equal the chunk count no matter how work was stolen.
        let (_, states) = par_map_chunks_with_state(3, 50, 4, || 0usize, |count, _| *count += 1);
        let total_chunks: usize = states.iter().sum();
        assert_eq!(total_chunks, 50usize.div_ceil(4));
        assert!(states.len() <= 3);
    }

    #[test]
    fn single_chunk_runs_inline() {
        // len <= chunk collapses to one chunk and the sequential path.
        let (out, states) = par_map_chunks_with_state(8, 5, 100, || (), |_, r| r.len());
        assert_eq!(out, vec![5]);
        assert_eq!(states.len(), 1);
    }

    #[test]
    fn effective_threads_resolves_zero_and_caps_absurd_requests() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
        let cap = (available_threads() * 4).max(8);
        assert_eq!(effective_threads(100_000), cap);
        assert_eq!(effective_threads(8), 8.min(cap));
    }

    #[test]
    fn balanced_chunk_respects_bounds() {
        assert_eq!(balanced_chunk(10, 4, 4, 512), 4);
        assert_eq!(balanced_chunk(1 << 20, 2, 4, 512), 512);
        let mid = balanced_chunk(1600, 2, 4, 512);
        assert_eq!(mid, 100);
    }
}
