//! [`PairSet`] — the relation type for RPQ results.
//!
//! Definition 2 of the paper makes an RPQ result a *set* of ordered vertex
//! pairs `R_G = {(v_i, v_j) | a path p(v_i, v_j) satisfying R exists}`.
//! `PairSet` stores that relation behind one of two backings:
//!
//! * **Flat** — a sorted, duplicate-free vector of `(start, end)` pairs:
//!   `O(log n)` membership by binary search, linear-time merge union (the
//!   `∪` of Algorithm 1 line 13), grouping by start for free.
//! * **Grouped** — a sorted vector of start vertices, each owning an
//!   [`Arc<RowSet>`] of its end vertices. This is the shape closure
//!   expansion produces naturally (Theorem 1: every member of an SCC shares
//!   one target row), so the same hybrid sparse/dense row is shared —
//!   not copied per member — from the `Rtc` all the way into the result,
//!   and unions of grouped results are per-row `Arc` clones plus
//!   word-parallel merges instead of whole-relation pair merges.
//!
//! The backing is an implementation detail: equality, iteration order and
//! every set operation are representation-independent.

use crate::ids::VertexId;
use crate::rowset::{RowIter, RowSet};
use rustc_hash::FxHashSet;
use std::fmt;
use std::sync::Arc;

/// A sorted, duplicate-free set of ordered vertex pairs (flat or
/// grouped-by-start backing — see the module docs).
#[derive(Clone)]
pub struct PairSet {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// Sorted unique `(start, end)` pairs.
    Flat(Vec<(VertexId, VertexId)>),
    /// Sorted starts, each with a shared row of end ids.
    Grouped(Grouped),
}

#[derive(Clone)]
struct Grouped {
    /// Ascending, unique start vertices with non-empty rows.
    starts: Vec<VertexId>,
    /// `rows[i]` = end ids of `starts[i]`, shared via `Arc`.
    rows: Vec<Arc<RowSet>>,
    /// Cached `Σ rows[i].len()`.
    len: usize,
}

impl Default for PairSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PairSet {
    /// The empty relation.
    pub fn new() -> Self {
        Self {
            repr: Repr::Flat(Vec::new()),
        }
    }

    /// Builds a `PairSet` from possibly unsorted, possibly duplicated pairs.
    pub fn from_pairs(mut pairs: Vec<(VertexId, VertexId)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Self {
            repr: Repr::Flat(pairs),
        }
    }

    /// Builds a `PairSet` from pairs already known to be sorted and unique.
    ///
    /// Checked in debug builds.
    pub fn from_sorted_unique(pairs: Vec<(VertexId, VertexId)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0] < w[1]),
            "pairs not sorted+unique"
        );
        Self {
            repr: Repr::Flat(pairs),
        }
    }

    /// Builds a grouped relation from `(start, ends)` rows. Starts may
    /// arrive in any order but must be unique; empty rows are dropped.
    /// Rows are shared, not copied — this is the zero-copy path from
    /// closure expansion into results.
    pub fn from_grouped_rows(mut groups: Vec<(VertexId, Arc<RowSet>)>) -> Self {
        groups.retain(|(_, row)| !row.is_empty());
        groups.sort_unstable_by_key(|&(s, _)| s);
        debug_assert!(
            groups.windows(2).all(|w| w[0].0 < w[1].0),
            "grouped starts must be unique"
        );
        let len = groups.iter().map(|(_, r)| r.len()).sum();
        let (starts, rows) = groups.into_iter().unzip();
        Self {
            repr: Repr::Grouped(Grouped { starts, rows, len }),
        }
    }

    /// Builds the identity relation `{(v, v) | v ∈ 0..n}`.
    ///
    /// This is `ε_G`: the result of the empty-path query over a graph with
    /// `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            repr: Repr::Flat((0..n as u32).map(|v| (VertexId(v), VertexId(v))).collect()),
        }
    }

    /// Number of pairs in the relation.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Flat(pairs) => pairs.len(),
            Repr::Grouped(g) => g.len,
        }
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the grouped-by-start backing is active (observability for
    /// tests and metrics; semantics never depend on it).
    pub fn is_grouped(&self) -> bool {
        matches!(self.repr, Repr::Grouped(_))
    }

    /// Membership test: binary search (flat) or start probe + row probe
    /// (grouped).
    pub fn contains(&self, start: VertexId, end: VertexId) -> bool {
        match &self.repr {
            Repr::Flat(pairs) => pairs.binary_search(&(start, end)).is_ok(),
            Repr::Grouped(g) => match g.starts.binary_search(&start) {
                Ok(i) => g.rows[i].contains(end.raw()),
                Err(_) => false,
            },
        }
    }

    /// Iterates over the pairs in ascending `(start, end)` order.
    pub fn iter(&self) -> PairIter<'_> {
        PairIter(match &self.repr {
            Repr::Flat(pairs) => PairIterInner::Flat(pairs.iter()),
            Repr::Grouped(g) => PairIterInner::Grouped {
                set: g,
                group: 0,
                row: g.rows.first().map(|r| r.iter()),
            },
        })
    }

    /// The end vertices reachable from `start`, as a borrowed view.
    pub fn ends_of(&self, start: VertexId) -> Ends<'_> {
        match &self.repr {
            Repr::Flat(pairs) => {
                let lo = pairs.partition_point(|&(s, _)| s < start);
                let hi = pairs.partition_point(|&(s, _)| s <= start);
                Ends::Pairs(&pairs[lo..hi])
            }
            Repr::Grouped(g) => match g.starts.binary_search(&start) {
                Ok(i) => Ends::Row(&g.rows[i]),
                Err(_) => Ends::Pairs(&[]),
            },
        }
    }

    /// Iterates over `(start, ends)` groups in ascending start order.
    pub fn groups(&self) -> PairGroups<'_> {
        PairGroups(match &self.repr {
            Repr::Flat(pairs) => PairGroupsInner::Flat { pairs, at: 0 },
            Repr::Grouped(g) => PairGroupsInner::Grouped { set: g, at: 0 },
        })
    }

    /// Set union. Flat∪flat is the classic linear merge; grouped∪grouped
    /// merges per start — rows present on one side are `Arc`-shared, and
    /// collisions union word-parallel when dense. Mixed backings fall back
    /// to a pair merge over both iterators.
    pub fn union(&self, other: &PairSet) -> PairSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        match (&self.repr, &other.repr) {
            (Repr::Grouped(a), Repr::Grouped(b)) => PairSet::from_grouped_rows(union_grouped(a, b)),
            _ => {
                let mut out = Vec::with_capacity(self.len() + other.len());
                let (mut a, mut b) = (self.iter().peekable(), other.iter().peekable());
                loop {
                    match (a.peek(), b.peek()) {
                        (Some(&x), Some(&y)) => {
                            use std::cmp::Ordering::*;
                            match x.cmp(&y) {
                                Less => {
                                    out.push(x);
                                    a.next();
                                }
                                Greater => {
                                    out.push(y);
                                    b.next();
                                }
                                Equal => {
                                    out.push(x);
                                    a.next();
                                    b.next();
                                }
                            }
                        }
                        (Some(_), None) => {
                            out.extend(a.by_ref());
                            break;
                        }
                        (None, _) => {
                            out.extend(b.by_ref());
                            break;
                        }
                    }
                }
                PairSet {
                    repr: Repr::Flat(out),
                }
            }
        }
    }

    /// In-place union; keeps `self` sorted and unique.
    ///
    /// Flat∪=flat genuinely merges in place: the missing elements are
    /// counted, the vector extended once, and the merge runs backward — no
    /// scratch vector, no reallocation when capacity suffices.
    /// Grouped∪=grouped rebuilds only the (cheap, `Arc`-cloned) group
    /// spine. Mixed backings flatten.
    pub fn union_in_place(&mut self, other: &PairSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = other.clone();
            return;
        }
        match (&mut self.repr, &other.repr) {
            (Repr::Flat(dst), Repr::Flat(src)) => union_pairs_in_place(dst, src),
            (Repr::Grouped(a), Repr::Grouped(b)) => {
                *self = PairSet::from_grouped_rows(union_grouped(a, b));
            }
            _ => *self = self.union(other),
        }
    }

    /// Set intersection by linear merge over both iterators.
    pub fn intersect(&self, other: &PairSet) -> PairSet {
        let mut out = Vec::new();
        let (mut a, mut b) = (self.iter().peekable(), other.iter().peekable());
        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
            use std::cmp::Ordering::*;
            match x.cmp(&y) {
                Less => {
                    a.next();
                }
                Greater => {
                    b.next();
                }
                Equal => {
                    out.push(x);
                    a.next();
                    b.next();
                }
            }
        }
        PairSet {
            repr: Repr::Flat(out),
        }
    }

    /// Set difference `self \ other` by linear merge over both iterators.
    pub fn difference(&self, other: &PairSet) -> PairSet {
        let mut out = Vec::new();
        let (mut a, mut b) = (self.iter().peekable(), other.iter().peekable());
        while let Some(&x) = a.peek() {
            match b.peek() {
                None => {
                    out.extend(a.by_ref());
                    break;
                }
                Some(&y) if x < y => {
                    out.push(x);
                    a.next();
                }
                Some(&y) if x > y => {
                    b.next();
                }
                Some(_) => {
                    a.next();
                    b.next();
                }
            }
        }
        PairSet {
            repr: Repr::Flat(out),
        }
    }

    /// Relational composition `self ⋈ other` (the join of Lemma 4):
    /// `{(a, c) | (a, b) ∈ self ∧ (b, c) ∈ other}`. Consumes grouped rows
    /// of `other` directly — no per-probe slice materialization.
    pub fn compose(&self, other: &PairSet) -> PairSet {
        let mut out = FxHashSet::default();
        for (a, b) in self.iter() {
            for c in other.ends_of(b).iter() {
                out.insert((a, c));
            }
        }
        PairSet::from_pairs(out.into_iter().collect())
    }

    /// Distinct start vertices, sorted ascending.
    pub fn starts(&self) -> Vec<VertexId> {
        match &self.repr {
            Repr::Flat(pairs) => {
                let mut out: Vec<VertexId> = pairs.iter().map(|&(s, _)| s).collect();
                out.dedup();
                out
            }
            Repr::Grouped(g) => g.starts.clone(),
        }
    }

    /// Distinct end vertices, sorted ascending.
    pub fn ends(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self.iter().map(|(_, e)| e).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Consumes the set, returning the sorted pair vector (materializing a
    /// grouped backing).
    pub fn into_vec(self) -> Vec<(VertexId, VertexId)> {
        match self.repr {
            Repr::Flat(pairs) => pairs,
            Repr::Grouped(_) => self.iter().collect(),
        }
    }

    /// Builds a hash-set view for repeated O(1) membership probes.
    pub fn to_hash_set(&self) -> FxHashSet<(VertexId, VertexId)> {
        self.iter().collect()
    }

    /// Heap footprint in bytes. Grouped rows are charged in full to every
    /// holder (an `Arc`-shared row is counted once per referencing set).
    pub fn heap_bytes(&self) -> usize {
        match &self.repr {
            Repr::Flat(pairs) => pairs.capacity() * std::mem::size_of::<(VertexId, VertexId)>(),
            Repr::Grouped(g) => {
                g.starts.capacity() * std::mem::size_of::<VertexId>()
                    + g.rows.capacity() * std::mem::size_of::<Arc<RowSet>>()
                    + g.rows.iter().map(|r| r.heap_bytes()).sum::<usize>()
            }
        }
    }
}

/// Merges sorted unique `src` into sorted unique `dst` in place: counts
/// the missing pairs, extends once, merges backward.
fn union_pairs_in_place(dst: &mut Vec<(VertexId, VertexId)>, src: &[(VertexId, VertexId)]) {
    let mut fresh = 0usize;
    {
        let mut i = 0;
        for &x in src {
            while i < dst.len() && dst[i] < x {
                i += 1;
            }
            if i >= dst.len() || dst[i] != x {
                fresh += 1;
            }
        }
    }
    if fresh == 0 {
        return;
    }
    let old_len = dst.len();
    dst.resize(old_len + fresh, (VertexId(0), VertexId(0)));
    let (mut i, mut j, mut w) = (old_len, src.len(), dst.len());
    while j > 0 {
        if i > 0 && dst[i - 1] > src[j - 1] {
            dst[w - 1] = dst[i - 1];
            i -= 1;
        } else {
            if i > 0 && dst[i - 1] == src[j - 1] {
                i -= 1;
            }
            dst[w - 1] = src[j - 1];
            j -= 1;
        }
        w -= 1;
    }
    while i > 0 {
        dst[w - 1] = dst[i - 1];
        i -= 1;
        w -= 1;
    }
}

/// Start-wise union of two grouped backings: one-sided rows are shared,
/// colliding rows are unioned (word-parallel when dense).
fn union_grouped(a: &Grouped, b: &Grouped) -> Vec<(VertexId, Arc<RowSet>)> {
    let mut out = Vec::with_capacity(a.starts.len().max(b.starts.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.starts.len() && j < b.starts.len() {
        use std::cmp::Ordering::*;
        match a.starts[i].cmp(&b.starts[j]) {
            Less => {
                out.push((a.starts[i], Arc::clone(&a.rows[i])));
                i += 1;
            }
            Greater => {
                out.push((b.starts[j], Arc::clone(&b.rows[j])));
                j += 1;
            }
            Equal => {
                let row = if a.rows[i] == b.rows[j] {
                    Arc::clone(&a.rows[i])
                } else {
                    Arc::new(a.rows[i].union(&b.rows[j]))
                };
                out.push((a.starts[i], row));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend(
        a.starts[i..]
            .iter()
            .zip(&a.rows[i..])
            .map(|(&s, r)| (s, Arc::clone(r))),
    );
    out.extend(
        b.starts[j..]
            .iter()
            .zip(&b.rows[j..])
            .map(|(&s, r)| (s, Arc::clone(r))),
    );
    out
}

impl PartialEq for PairSet {
    /// Content equality, independent of the backing.
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Flat(a), Repr::Flat(b)) => a == b,
            _ => self.len() == other.len() && self.iter().eq(other.iter()),
        }
    }
}

impl Eq for PairSet {}

impl FromIterator<(VertexId, VertexId)> for PairSet {
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId)>>(iter: I) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

impl FromIterator<(u32, u32)> for PairSet {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        Self::from_pairs(
            iter.into_iter()
                .map(|(a, b)| (VertexId(a), VertexId(b)))
                .collect(),
        )
    }
}

impl fmt::Debug for PairSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|(a, b)| format!("({a},{b})")))
            .finish()
    }
}

/// Ascending `(start, end)` iterator over a [`PairSet`].
pub struct PairIter<'a>(PairIterInner<'a>);

enum PairIterInner<'a> {
    Flat(std::slice::Iter<'a, (VertexId, VertexId)>),
    Grouped {
        set: &'a Grouped,
        group: usize,
        row: Option<RowIter<'a>>,
    },
}

impl Iterator for PairIter<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.0 {
            PairIterInner::Flat(it) => it.next().copied(),
            PairIterInner::Grouped { set, group, row } => loop {
                let it = row.as_mut()?;
                if let Some(end) = it.next() {
                    return Some((set.starts[*group], VertexId(end)));
                }
                *group += 1;
                *row = set.rows.get(*group).map(|r| r.iter());
            },
        }
    }
}

/// Borrowed view of the end vertices of one start — the group payload
/// [`PairSet::ends_of`] and [`PairSet::groups`] hand out. Join pipelines
/// consume grouped [`RowSet`] rows through this without materializing
/// pair slices.
pub enum Ends<'a> {
    /// Ends embedded in a flat pair slice (all pairs share one start).
    Pairs(&'a [(VertexId, VertexId)]),
    /// Ends as a shared hybrid row.
    Row(&'a RowSet),
    /// A single synthesized end (identity relations).
    Single(VertexId),
}

impl<'a> Ends<'a> {
    /// Number of end vertices.
    pub fn len(&self) -> usize {
        match self {
            Ends::Pairs(p) => p.len(),
            Ends::Row(r) => r.len(),
            Ends::Single(_) => 1,
        }
    }

    /// Whether there are no ends.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Membership test for an end vertex.
    pub fn contains(&self, end: VertexId) -> bool {
        match self {
            Ends::Pairs(p) => p.binary_search_by(|&(_, e)| e.cmp(&end)).is_ok(),
            Ends::Row(r) => r.contains(end.raw()),
            Ends::Single(v) => *v == end,
        }
    }

    /// End vertices ascending.
    pub fn iter(&self) -> EndsIter<'a> {
        match self {
            Ends::Pairs(p) => EndsIter::Pairs(p.iter()),
            Ends::Row(r) => EndsIter::Row(r.iter()),
            Ends::Single(v) => EndsIter::Single(Some(*v)),
        }
    }
}

/// Ascending iterator over an [`Ends`] view.
pub enum EndsIter<'a> {
    /// Flat pair slice.
    Pairs(std::slice::Iter<'a, (VertexId, VertexId)>),
    /// Hybrid row.
    Row(RowIter<'a>),
    /// At most one synthesized end.
    Single(Option<VertexId>),
}

impl Iterator for EndsIter<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        match self {
            EndsIter::Pairs(it) => it.next().map(|&(_, e)| e),
            EndsIter::Row(it) => it.next().map(VertexId),
            EndsIter::Single(v) => v.take(),
        }
    }
}

/// Iterator over `(start, ends)` runs of a [`PairSet`].
pub struct PairGroups<'a>(PairGroupsInner<'a>);

enum PairGroupsInner<'a> {
    Flat {
        pairs: &'a [(VertexId, VertexId)],
        at: usize,
    },
    Grouped {
        set: &'a Grouped,
        at: usize,
    },
}

impl<'a> Iterator for PairGroups<'a> {
    type Item = (VertexId, Ends<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.0 {
            PairGroupsInner::Flat { pairs, at } => {
                if *at >= pairs.len() {
                    return None;
                }
                let start = pairs[*at].0;
                let begin = *at;
                while *at < pairs.len() && pairs[*at].0 == start {
                    *at += 1;
                }
                Some((start, Ends::Pairs(&pairs[begin..*at])))
            }
            PairGroupsInner::Grouped { set, at } => {
                if *at >= set.starts.len() {
                    return None;
                }
                let i = *at;
                *at += 1;
                Some((set.starts[i], Ends::Row(&set.rows[i])))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(pairs: &[(u32, u32)]) -> PairSet {
        pairs.iter().copied().collect()
    }

    /// The same relation with the grouped backing.
    fn grouped(pairs: &[(u32, u32)]) -> PairSet {
        let flat = ps(pairs);
        let mut groups: Vec<(VertexId, Arc<RowSet>)> = Vec::new();
        for (s, ends) in flat.groups() {
            let row: Vec<u32> = ends.iter().map(VertexId::raw).collect();
            groups.push((s, Arc::new(RowSet::from_sorted_vec(row))));
        }
        let g = PairSet::from_grouped_rows(groups);
        assert!(g.is_grouped() || g.is_empty());
        g
    }

    fn vecs(s: &PairSet) -> Vec<(u32, u32)> {
        s.iter().map(|(a, b)| (a.raw(), b.raw())).collect()
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let s = ps(&[(2, 1), (0, 0), (2, 1), (1, 5)]);
        assert_eq!(s.len(), 3);
        assert_eq!(vecs(&s), vec![(0, 0), (1, 5), (2, 1)]);
    }

    #[test]
    fn contains_via_binary_search() {
        let pairs = [(1, 2), (3, 4)];
        for s in [ps(&pairs), grouped(&pairs)] {
            assert!(s.contains(VertexId(1), VertexId(2)));
            assert!(!s.contains(VertexId(1), VertexId(3)));
            assert!(!s.contains(VertexId(0), VertexId(0)));
        }
    }

    #[test]
    fn identity_relation() {
        let s = PairSet::identity(3);
        assert_eq!(s.len(), 3);
        for v in 0..3 {
            assert!(s.contains(VertexId(v), VertexId(v)));
        }
        assert!(PairSet::identity(0).is_empty());
    }

    #[test]
    fn grouped_equals_flat_and_iterates_identically() {
        let pairs = [(0, 1), (0, 7), (2, 3), (9, 0)];
        let (f, g) = (ps(&pairs), grouped(&pairs));
        assert_eq!(f, g);
        assert_eq!(g, f);
        assert_eq!(vecs(&f), vecs(&g));
        assert_eq!(f.len(), g.len());
        assert_eq!(f.starts(), g.starts());
        assert_eq!(f.ends(), g.ends());
        assert_eq!(f.to_hash_set(), g.to_hash_set());
        assert_eq!(f.clone().into_vec(), g.clone().into_vec());
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = ps(&[(0, 1), (2, 3)]);
        let b = ps(&[(0, 1), (1, 1)]);
        let u = a.union(&b);
        assert_eq!(u, ps(&[(0, 1), (1, 1), (2, 3)]));
        // Union with empty is identity.
        assert_eq!(a.union(&PairSet::new()), a);
        assert_eq!(PairSet::new().union(&b), b);
    }

    #[test]
    fn union_across_backings() {
        let a = [(0u32, 1u32), (2, 3), (2, 9)];
        let b = [(0u32, 1u32), (1, 1), (2, 4)];
        let expect = ps(&[(0, 1), (1, 1), (2, 3), (2, 4), (2, 9)]);
        for lhs in [ps(&a), grouped(&a)] {
            for rhs in [ps(&b), grouped(&b)] {
                assert_eq!(lhs.union(&rhs), expect);
                let mut in_place = lhs.clone();
                in_place.union_in_place(&rhs);
                assert_eq!(in_place, expect);
            }
        }
        // Grouped ∪ grouped keeps the grouped backing.
        assert!(grouped(&a).union(&grouped(&b)).is_grouped());
    }

    #[test]
    fn union_of_grouped_shares_unchanged_rows() {
        let a = grouped(&[(0, 1), (0, 2)]);
        let b = grouped(&[(5, 7)]);
        let u = a.union(&b);
        assert!(u.is_grouped());
        assert_eq!(u, ps(&[(0, 1), (0, 2), (5, 7)]));
        // Disjoint starts: both rows are Arc-shared, not copied.
        match (&a.repr, &u.repr) {
            (Repr::Grouped(ga), Repr::Grouped(gu)) => {
                assert!(Arc::ptr_eq(&ga.rows[0], &gu.rows[0]));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn union_in_place_matches_union() {
        let mut a = ps(&[(0, 1), (5, 5)]);
        let b = ps(&[(0, 2), (5, 5)]);
        let expect = a.union(&b);
        a.union_in_place(&b);
        assert_eq!(a, expect);
    }

    /// ISSUE 7 satellite: flat ∪= must merge in place — same result as
    /// `union`, and no reallocation when capacity suffices.
    #[test]
    fn union_in_place_is_actually_in_place() {
        let mut seed = Vec::with_capacity(32);
        seed.extend([
            (VertexId(1), VertexId(1)),
            (VertexId(3), VertexId(3)),
            (VertexId(9), VertexId(9)),
        ]);
        let mut a = PairSet::from_sorted_unique(seed);
        let expect = a.union(&ps(&[(0, 5), (3, 3), (4, 4)]));
        let Repr::Flat(v) = &a.repr else {
            unreachable!()
        };
        let ptr = v.as_ptr();
        assert!(v.capacity() >= 32, "fixture must have spare capacity");
        a.union_in_place(&ps(&[(0, 5), (3, 3), (4, 4)]));
        assert_eq!(a, expect);
        assert_eq!(vecs(&a), vec![(0, 5), (1, 1), (3, 3), (4, 4), (9, 9)]);
        let Repr::Flat(v) = &a.repr else {
            unreachable!()
        };
        assert_eq!(v.as_ptr(), ptr, "capacity sufficed: must not reallocate");
        // Subset union: no growth, no movement.
        a.union_in_place(&ps(&[(1, 1), (9, 9)]));
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn intersect_and_difference() {
        let a = ps(&[(0, 1), (1, 2), (2, 3)]);
        let b = ps(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(a.intersect(&b), ps(&[(1, 2), (2, 3)]));
        assert_eq!(a.difference(&b), ps(&[(0, 1)]));
        assert_eq!(b.difference(&a), ps(&[(3, 4)]));
        // Same answers through the grouped backing.
        assert_eq!(
            grouped(&[(0, 1), (1, 2), (2, 3)]).intersect(&b),
            ps(&[(1, 2), (2, 3)])
        );
        assert_eq!(
            a.difference(&grouped(&[(1, 2), (2, 3), (3, 4)])),
            ps(&[(0, 1)])
        );
    }

    #[test]
    fn compose_implements_lemma4_join() {
        // (A·B)_G = π(A_G ⋈ B_G); Lemma 4.
        let ab = ps(&[(0, 1), (0, 2), (3, 1)]);
        let bc = ps(&[(1, 7), (2, 7), (2, 8)]);
        let c = ab.compose(&bc);
        assert_eq!(c, ps(&[(0, 7), (0, 8), (3, 7)]));
        // Grouped right side feeds the join through its rows directly.
        assert_eq!(ab.compose(&grouped(&[(1, 7), (2, 7), (2, 8)])), c);
    }

    #[test]
    fn compose_with_identity_is_noop() {
        let a = ps(&[(0, 1), (2, 3)]);
        let id = PairSet::identity(5);
        assert_eq!(a.compose(&id), a);
        assert_eq!(id.compose(&a), a);
    }

    #[test]
    fn ends_of_returns_group() {
        for s in [
            ps(&[(1, 2), (1, 5), (2, 0)]),
            grouped(&[(1, 2), (1, 5), (2, 0)]),
        ] {
            let ends = s.ends_of(VertexId(1));
            assert_eq!(ends.len(), 2);
            assert!(ends.contains(VertexId(5)));
            assert!(!ends.contains(VertexId(0)));
            let group: Vec<u32> = ends.iter().map(VertexId::raw).collect();
            assert_eq!(group, vec![2, 5]);
            assert!(s.ends_of(VertexId(9)).is_empty());
        }
    }

    #[test]
    fn groups_iterates_runs() {
        for s in [
            ps(&[(1, 2), (1, 5), (3, 0)]),
            grouped(&[(1, 2), (1, 5), (3, 0)]),
        ] {
            let runs: Vec<(u32, usize)> = s.groups().map(|(v, g)| (v.raw(), g.len())).collect();
            assert_eq!(runs, vec![(1, 2), (3, 1)]);
        }
    }

    #[test]
    fn starts_and_ends_are_sorted_unique() {
        let s = ps(&[(3, 1), (1, 1), (3, 2)]);
        assert_eq!(s.starts(), vec![VertexId(1), VertexId(3)]);
        assert_eq!(s.ends(), vec![VertexId(1), VertexId(2)]);
    }

    #[test]
    fn from_sorted_unique_accepts_valid_input() {
        let s = PairSet::from_sorted_unique(vec![
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(0)),
        ]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    #[cfg(debug_assertions)]
    fn from_sorted_unique_rejects_unsorted_in_debug() {
        let _ = PairSet::from_sorted_unique(vec![
            (VertexId(1), VertexId(0)),
            (VertexId(0), VertexId(1)),
        ]);
    }

    #[test]
    fn hash_set_view_agrees() {
        let s = ps(&[(0, 1), (2, 3)]);
        let h = s.to_hash_set();
        assert_eq!(h.len(), 2);
        assert!(h.contains(&(VertexId(0), VertexId(1))));
    }

    #[test]
    fn from_grouped_rows_drops_empty_and_sorts() {
        let g = PairSet::from_grouped_rows(vec![
            (VertexId(7), Arc::new(RowSet::from_sorted_vec(vec![0, 3]))),
            (VertexId(1), Arc::new(RowSet::empty())),
            (VertexId(2), Arc::new(RowSet::singleton(9))),
        ]);
        assert_eq!(vecs(&g), vec![(2, 9), (7, 0), (7, 3)]);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn heap_bytes_counts_both_backings() {
        let flat = ps(&[(0, 1), (2, 3)]);
        assert!(flat.heap_bytes() >= 2 * std::mem::size_of::<(VertexId, VertexId)>());
        let g = grouped(&[(0, 1), (0, 2), (5, 7)]);
        // starts + Arc spine + row payloads, all non-zero here.
        assert!(g.heap_bytes() >= 3 * 4);
        assert_eq!(PairSet::new().heap_bytes(), 0);
    }
}
