//! [`PairSet`] — the relation type for RPQ results.
//!
//! Definition 2 of the paper makes an RPQ result a *set* of ordered vertex
//! pairs `R_G = {(v_i, v_j) | a path p(v_i, v_j) satisfying R exists}`.
//! `PairSet` stores that relation as a sorted, duplicate-free vector of
//! `(start, end)` pairs, which gives
//!
//! * `O(log n)` membership tests by binary search,
//! * linear-time merge-based union (the `∪` of Algorithm 1 line 13),
//! * grouping by start vertex for join pipelines for free (the pairs are
//!   already clustered by `start`).

use crate::ids::VertexId;
use rustc_hash::FxHashSet;
use std::fmt;

/// A sorted, duplicate-free set of ordered vertex pairs.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct PairSet {
    pairs: Vec<(VertexId, VertexId)>,
}

impl PairSet {
    /// The empty relation.
    pub fn new() -> Self {
        Self { pairs: Vec::new() }
    }

    /// Builds a `PairSet` from possibly unsorted, possibly duplicated pairs.
    pub fn from_pairs(mut pairs: Vec<(VertexId, VertexId)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        Self { pairs }
    }

    /// Builds a `PairSet` from pairs already known to be sorted and unique.
    ///
    /// Checked in debug builds.
    pub fn from_sorted_unique(pairs: Vec<(VertexId, VertexId)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0] < w[1]),
            "pairs not sorted+unique"
        );
        Self { pairs }
    }

    /// Builds the identity relation `{(v, v) | v ∈ 0..n}`.
    ///
    /// This is `ε_G`: the result of the empty-path query over a graph with
    /// `n` vertices.
    pub fn identity(n: usize) -> Self {
        Self {
            pairs: (0..n as u32).map(|v| (VertexId(v), VertexId(v))).collect(),
        }
    }

    /// Number of pairs in the relation.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test by binary search.
    pub fn contains(&self, start: VertexId, end: VertexId) -> bool {
        self.pairs.binary_search(&(start, end)).is_ok()
    }

    /// All pairs, sorted ascending by `(start, end)`.
    #[inline]
    pub fn as_slice(&self) -> &[(VertexId, VertexId)] {
        &self.pairs
    }

    /// Iterates over the pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.pairs.iter().copied()
    }

    /// The end vertices reachable from `start`, as a sorted sub-slice.
    pub fn ends_of(&self, start: VertexId) -> &[(VertexId, VertexId)] {
        let lo = self.pairs.partition_point(|&(s, _)| s < start);
        let hi = self.pairs.partition_point(|&(s, _)| s <= start);
        &self.pairs[lo..hi]
    }

    /// Iterates over `(start, ends)` groups in ascending start order.
    pub fn groups(&self) -> PairGroups<'_> {
        PairGroups {
            pairs: &self.pairs,
            at: 0,
        }
    }

    /// Set union, implemented as a linear merge of the two sorted vectors.
    pub fn union(&self, other: &PairSet) -> PairSet {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (a, b) = (&self.pairs, &other.pairs);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        PairSet { pairs: out }
    }

    /// In-place union; keeps `self` sorted and unique.
    pub fn union_in_place(&mut self, other: &PairSet) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            self.pairs = other.pairs.clone();
            return;
        }
        *self = self.union(other);
    }

    /// Set intersection by linear merge.
    pub fn intersect(&self, other: &PairSet) -> PairSet {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        PairSet { pairs: out }
    }

    /// Set difference `self \ other` by linear merge.
    pub fn difference(&self, other: &PairSet) -> PairSet {
        let (a, b) = (&self.pairs, &other.pairs);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() {
            if j >= b.len() || a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else if a[i] > b[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        PairSet { pairs: out }
    }

    /// Relational composition `self ⋈ other` (the join of Lemma 4):
    /// `{(a, c) | (a, b) ∈ self ∧ (b, c) ∈ other}`.
    pub fn compose(&self, other: &PairSet) -> PairSet {
        let mut out = FxHashSet::default();
        for (a, b) in self.iter() {
            for &(_, c) in other.ends_of(b) {
                out.insert((a, c));
            }
        }
        PairSet::from_pairs(out.into_iter().collect())
    }

    /// Distinct start vertices, sorted ascending.
    pub fn starts(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self.groups().map(|(s, _)| s).collect();
        out.dedup();
        out
    }

    /// Distinct end vertices, sorted ascending.
    pub fn ends(&self) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self.pairs.iter().map(|&(_, e)| e).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Consumes the set, returning the sorted pair vector.
    pub fn into_vec(self) -> Vec<(VertexId, VertexId)> {
        self.pairs
    }

    /// Builds a hash-set view for repeated O(1) membership probes.
    pub fn to_hash_set(&self) -> FxHashSet<(VertexId, VertexId)> {
        self.pairs.iter().copied().collect()
    }
}

impl FromIterator<(VertexId, VertexId)> for PairSet {
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId)>>(iter: I) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

impl FromIterator<(u32, u32)> for PairSet {
    fn from_iter<I: IntoIterator<Item = (u32, u32)>>(iter: I) -> Self {
        Self::from_pairs(
            iter.into_iter()
                .map(|(a, b)| (VertexId(a), VertexId(b)))
                .collect(),
        )
    }
}

impl fmt::Debug for PairSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.pairs.iter().map(|(a, b)| format!("({a},{b})")))
            .finish()
    }
}

/// Iterator over `(start, group)` runs of a [`PairSet`].
pub struct PairGroups<'a> {
    pairs: &'a [(VertexId, VertexId)],
    at: usize,
}

impl<'a> Iterator for PairGroups<'a> {
    type Item = (VertexId, &'a [(VertexId, VertexId)]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.at >= self.pairs.len() {
            return None;
        }
        let start = self.pairs[self.at].0;
        let begin = self.at;
        while self.at < self.pairs.len() && self.pairs[self.at].0 == start {
            self.at += 1;
        }
        Some((start, &self.pairs[begin..self.at]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(pairs: &[(u32, u32)]) -> PairSet {
        pairs.iter().copied().collect()
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let s = ps(&[(2, 1), (0, 0), (2, 1), (1, 5)]);
        assert_eq!(s.len(), 3);
        assert_eq!(
            s.as_slice(),
            &[
                (VertexId(0), VertexId(0)),
                (VertexId(1), VertexId(5)),
                (VertexId(2), VertexId(1))
            ]
        );
    }

    #[test]
    fn contains_via_binary_search() {
        let s = ps(&[(1, 2), (3, 4)]);
        assert!(s.contains(VertexId(1), VertexId(2)));
        assert!(!s.contains(VertexId(1), VertexId(3)));
        assert!(!s.contains(VertexId(0), VertexId(0)));
    }

    #[test]
    fn identity_relation() {
        let s = PairSet::identity(3);
        assert_eq!(s.len(), 3);
        for v in 0..3 {
            assert!(s.contains(VertexId(v), VertexId(v)));
        }
        assert!(PairSet::identity(0).is_empty());
    }

    #[test]
    fn union_merges_without_duplicates() {
        let a = ps(&[(0, 1), (2, 3)]);
        let b = ps(&[(0, 1), (1, 1)]);
        let u = a.union(&b);
        assert_eq!(u, ps(&[(0, 1), (1, 1), (2, 3)]));
        // Union with empty is identity.
        assert_eq!(a.union(&PairSet::new()), a);
        assert_eq!(PairSet::new().union(&b), b);
    }

    #[test]
    fn union_in_place_matches_union() {
        let mut a = ps(&[(0, 1), (5, 5)]);
        let b = ps(&[(0, 2), (5, 5)]);
        let expect = a.union(&b);
        a.union_in_place(&b);
        assert_eq!(a, expect);
    }

    #[test]
    fn intersect_and_difference() {
        let a = ps(&[(0, 1), (1, 2), (2, 3)]);
        let b = ps(&[(1, 2), (2, 3), (3, 4)]);
        assert_eq!(a.intersect(&b), ps(&[(1, 2), (2, 3)]));
        assert_eq!(a.difference(&b), ps(&[(0, 1)]));
        assert_eq!(b.difference(&a), ps(&[(3, 4)]));
    }

    #[test]
    fn compose_implements_lemma4_join() {
        // (A·B)_G = π(A_G ⋈ B_G); Lemma 4.
        let ab = ps(&[(0, 1), (0, 2), (3, 1)]);
        let bc = ps(&[(1, 7), (2, 7), (2, 8)]);
        let c = ab.compose(&bc);
        assert_eq!(c, ps(&[(0, 7), (0, 8), (3, 7)]));
    }

    #[test]
    fn compose_with_identity_is_noop() {
        let a = ps(&[(0, 1), (2, 3)]);
        let id = PairSet::identity(5);
        assert_eq!(a.compose(&id), a);
        assert_eq!(id.compose(&a), a);
    }

    #[test]
    fn ends_of_returns_group() {
        let s = ps(&[(1, 2), (1, 5), (2, 0)]);
        let group: Vec<u32> = s
            .ends_of(VertexId(1))
            .iter()
            .map(|&(_, e)| e.raw())
            .collect();
        assert_eq!(group, vec![2, 5]);
        assert!(s.ends_of(VertexId(9)).is_empty());
    }

    #[test]
    fn groups_iterates_runs() {
        let s = ps(&[(1, 2), (1, 5), (3, 0)]);
        let runs: Vec<(u32, usize)> = s.groups().map(|(v, g)| (v.raw(), g.len())).collect();
        assert_eq!(runs, vec![(1, 2), (3, 1)]);
    }

    #[test]
    fn starts_and_ends_are_sorted_unique() {
        let s = ps(&[(3, 1), (1, 1), (3, 2)]);
        assert_eq!(s.starts(), vec![VertexId(1), VertexId(3)]);
        assert_eq!(s.ends(), vec![VertexId(1), VertexId(2)]);
    }

    #[test]
    fn from_sorted_unique_accepts_valid_input() {
        let s = PairSet::from_sorted_unique(vec![
            (VertexId(0), VertexId(1)),
            (VertexId(1), VertexId(0)),
        ]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    #[cfg(debug_assertions)]
    fn from_sorted_unique_rejects_unsorted_in_debug() {
        let _ = PairSet::from_sorted_unique(vec![
            (VertexId(1), VertexId(0)),
            (VertexId(0), VertexId(1)),
        ]);
    }

    #[test]
    fn hash_set_view_agrees() {
        let s = ps(&[(0, 1), (2, 3)]);
        let h = s.to_hash_set();
        assert_eq!(h.len(), 2);
        assert!(h.contains(&(VertexId(0), VertexId(1))));
    }
}
