//! A dense square bit matrix with word-parallel row operations.
//!
//! Used by the bitset transitive-closure variant: closing a DAG by OR-ing
//! successor rows touches 64 reachability bits per instruction, which beats
//! list merging when the closure is dense. Memory is `rows²/8` bytes, so
//! this representation is only appropriate for small row counts (the
//! condensation `Ḡ_R`, not `G` itself).

/// A square bit matrix over `rows × rows` cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        Self {
            rows: n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// Number of rows (= columns).
    #[inline]
    pub fn size(&self) -> usize {
        self.rows
    }

    /// Heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * 8
    }

    /// Sets cell `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.rows && col < self.rows);
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Reads cell `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.rows && col < self.rows);
        self.bits[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// `row(dst) |= row(src)` — the word-parallel union step.
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        debug_assert!(src != dst, "aliasing rows");
        let w = self.words_per_row;
        let (src_start, dst_start) = (src * w, dst * w);
        if src_start < dst_start {
            let (lo, hi) = self.bits.split_at_mut(dst_start);
            let s = &lo[src_start..src_start + w];
            for (d, s) in hi[..w].iter_mut().zip(s) {
                *d |= s;
            }
        } else {
            let (lo, hi) = self.bits.split_at_mut(src_start);
            let d = &mut lo[dst_start..dst_start + w];
            for (d, s) in d.iter_mut().zip(&hi[..w]) {
                *d |= s;
            }
        }
    }

    /// Number of set bits in `row`.
    pub fn row_count(&self, row: usize) -> usize {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|x| x.count_ones() as usize).sum()
    }

    /// Iterates over the set column indices of `row`, ascending.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = u32> + '_ {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| {
                let mut bits = word;
                std::iter::from_fn(move || {
                    if bits == 0 {
                        None
                    } else {
                        let b = bits.trailing_zeros();
                        bits &= bits - 1;
                        Some(wi as u32 * 64 + b)
                    }
                })
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::new(100);
        assert!(!m.get(3, 77));
        m.set(3, 77);
        assert!(m.get(3, 77));
        assert!(!m.get(77, 3));
        assert_eq!(m.size(), 100);
    }

    #[test]
    fn or_row_into_unions() {
        let mut m = BitMatrix::new(130); // > 2 words per row
        m.set(0, 1);
        m.set(0, 129);
        m.set(1, 64);
        m.or_row_into(0, 1);
        assert!(m.get(1, 1));
        assert!(m.get(1, 64));
        assert!(m.get(1, 129));
        assert_eq!(m.row_count(1), 3);
        // Reverse direction (src > dst).
        m.or_row_into(1, 0);
        assert!(m.get(0, 64));
    }

    #[test]
    fn row_iter_ascending() {
        let mut m = BitMatrix::new(200);
        for c in [0usize, 63, 64, 127, 199] {
            m.set(5, c);
        }
        let cols: Vec<u32> = m.row_iter(5).collect();
        assert_eq!(cols, vec![0, 63, 64, 127, 199]);
        assert_eq!(m.row_iter(6).count(), 0);
    }

    #[test]
    fn count_ones_totals() {
        let mut m = BitMatrix::new(10);
        m.set(0, 0);
        m.set(9, 9);
        m.set(5, 5);
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::new(0);
        assert_eq!(m.size(), 0);
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    #[should_panic(expected = "aliasing")]
    #[cfg(debug_assertions)]
    fn or_row_into_rejects_aliasing() {
        let mut m = BitMatrix::new(4);
        m.or_row_into(2, 2);
    }
}
