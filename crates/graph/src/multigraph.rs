//! The edge-labeled, directed multigraph of Section II-A.
//!
//! `G = (V, E, f, Σ, l)`: vertices, directed edges, an incidence function,
//! an alphabet and a labeling function. Parallel edges between an ordered
//! vertex pair are allowed but must carry **distinct labels** — the builder
//! enforces this by deduplicating `(src, label, dst)` triples.
//!
//! Storage is row-per-vertex (and row-per-label) sorted adjacency in three
//! orientations so that every access pattern the evaluator needs is a
//! contiguous scan or a binary search:
//!
//! * `out_adj[v]` — out-edges of `v`, sorted by `(label, dst)`; lets the
//!   product-graph traversal fetch `σ_{label}(out(v))` with two
//!   `partition_point` calls.
//! * `in_adj[v]` — in-edges, same layout, for reverse traversals.
//! * `label_edges[l]` — the full edge list of label `l`, sorted by
//!   `(src, dst)`; this is the base relation `l_G` used by closure-free
//!   clause evaluation and by first-label source pruning.
//!
//! Each row is its own vector (rather than one flat CSR) so that the
//! versioned-mutation layer ([`crate::VersionedGraph`]) can apply a single
//! edge insert/delete by touching only the three rows involved —
//! `O(row length)` per edge instead of a full rebuild.
//!
//! Rows are reference-counted (`Arc<Vec<_>>`) so a clone of the whole graph
//! is `O(|V| + |Σ|)` pointer bumps that *share* every row. Mutation goes
//! through [`Arc::make_mut`]: a row still shared with an older clone (a
//! frozen [`crate::GraphView`]) is copied on first write, so frozen views
//! stay immutable while the live graph pays only for the rows it dirties.

use crate::error::GraphError;
use crate::ids::{LabelId, VertexId};
use crate::label_dict::LabelDict;
use std::sync::Arc;

/// An edge-labeled directed multigraph (the paper's `G`).
///
/// Immutable through its public API; in-place single-edge mutation is
/// reserved for [`crate::VersionedGraph`], which pairs it with epoch
/// stamping so downstream caches can detect staleness.
#[derive(Clone, Debug)]
pub struct LabeledMultigraph {
    vertex_count: usize,
    labels: LabelDict,
    out_adj: Vec<Arc<Vec<(LabelId, VertexId)>>>,
    in_adj: Vec<Arc<Vec<(LabelId, VertexId)>>>,
    label_edges: Vec<Arc<Vec<(VertexId, VertexId)>>>,
    edge_count: usize,
}

impl LabeledMultigraph {
    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Number of edges `|E|` (after label-level deduplication).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The alphabet `Σ`.
    #[inline]
    pub fn labels(&self) -> &LabelDict {
        &self.labels
    }

    /// Number of distinct labels `|Σ|`.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.vertex_count as u32).map(VertexId)
    }

    /// Out-edges of `v` as `(label, dst)`, sorted by `(label, dst)`.
    #[inline]
    pub fn out_edges(&self, v: VertexId) -> &[(LabelId, VertexId)] {
        &self.out_adj[v.index()]
    }

    /// In-edges of `v` as `(label, src)`, sorted by `(label, src)`.
    #[inline]
    pub fn in_edges(&self, v: VertexId) -> &[(LabelId, VertexId)] {
        &self.in_adj[v.index()]
    }

    /// Out-neighbors of `v` through edges labeled `label`, as a sorted
    /// sub-slice of the adjacency row.
    pub fn out_with_label(&self, v: VertexId, label: LabelId) -> &[(LabelId, VertexId)] {
        label_range(&self.out_adj[v.index()], label)
    }

    /// In-neighbors of `v` through edges labeled `label`.
    pub fn in_with_label(&self, v: VertexId, label: LabelId) -> &[(LabelId, VertexId)] {
        label_range(&self.in_adj[v.index()], label)
    }

    /// The full edge relation of `label`: `{(src, dst)}` sorted ascending.
    pub fn edges_with_label(&self, label: LabelId) -> &[(VertexId, VertexId)] {
        &self.label_edges[label.index()]
    }

    /// Number of edges carrying `label`.
    pub fn label_edge_count(&self, label: LabelId) -> usize {
        self.label_edges[label.index()].len()
    }

    /// Distinct source vertices of edges labeled `label`, ascending.
    pub fn sources_with_label(&self, label: LabelId) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = self
            .edges_with_label(label)
            .iter()
            .map(|&(s, _)| s)
            .collect();
        out.dedup();
        out
    }

    /// Whether the edge `e(src, label, dst)` exists.
    pub fn has_edge(&self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        src.index() < self.vertex_count
            && self.out_adj[src.index()]
                .binary_search(&(label, dst))
                .is_ok()
    }

    /// Average vertex degree per label, `|E| / (|V|·|Σ|)` — the x-axis of
    /// every figure in the paper's evaluation.
    pub fn degree_per_label(&self) -> f64 {
        if self.vertex_count == 0 || self.labels.is_empty() {
            return 0.0;
        }
        self.edge_count() as f64 / (self.vertex_count as f64 * self.labels.len() as f64)
    }

    /// Iterates over every edge as `(src, label, dst)` in label-major order.
    pub fn all_edges(&self) -> impl Iterator<Item = (VertexId, LabelId, VertexId)> + '_ {
        (0..self.labels.len()).flat_map(move |l| {
            let label = LabelId::from_usize(l);
            self.edges_with_label(label)
                .iter()
                .map(move |&(s, d)| (s, label, d))
        })
    }

    // ---- mutation primitives (crate-private: used by `VersionedGraph`) ----

    /// Grows the vertex set to at least `n` vertices (never shrinks).
    pub(crate) fn grow_vertices(&mut self, n: usize) {
        if n > self.vertex_count {
            self.out_adj.resize_with(n, Default::default);
            self.in_adj.resize_with(n, Default::default);
            self.vertex_count = n;
        }
    }

    /// Interns a label name, growing the per-label edge table for new ids.
    pub(crate) fn intern_label_mut(&mut self, name: &str) -> LabelId {
        let id = self.labels.intern(name);
        if id.index() >= self.label_edges.len() {
            self.label_edges
                .resize_with(id.index() + 1, Default::default);
        }
        id
    }

    /// Inserts edge `e(src, label, dst)`, growing the vertex set as needed.
    ///
    /// Returns `false` (and changes nothing) if the edge already exists.
    /// Cost: `O(log + len)` of the three rows touched.
    pub(crate) fn insert_edge_raw(&mut self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        debug_assert!(label.index() < self.label_edges.len(), "unknown label id");
        self.grow_vertices(src.index().max(dst.index()) + 1);
        // `make_mut` copies a row only when a frozen view still shares it.
        if self.out_adj[src.index()]
            .binary_search(&(label, dst))
            .is_ok()
        {
            return false;
        }
        let row = Arc::make_mut(&mut self.out_adj[src.index()]);
        let at = row.binary_search(&(label, dst)).unwrap_err();
        row.insert(at, (label, dst));
        let row = Arc::make_mut(&mut self.in_adj[dst.index()]);
        let at = row.binary_search(&(label, src)).unwrap_err();
        row.insert(at, (label, src));
        let row = Arc::make_mut(&mut self.label_edges[label.index()]);
        let at = row.binary_search(&(src, dst)).unwrap_err();
        row.insert(at, (src, dst));
        self.edge_count += 1;
        true
    }

    /// Removes edge `e(src, label, dst)`.
    ///
    /// Returns `false` (and changes nothing) if the edge does not exist.
    /// The vertex set and alphabet never shrink — vertex ids and label ids
    /// stay stable across deletions.
    pub(crate) fn remove_edge_raw(&mut self, src: VertexId, label: LabelId, dst: VertexId) -> bool {
        if src.index() >= self.vertex_count
            || dst.index() >= self.vertex_count
            || label.index() >= self.label_edges.len()
        {
            return false;
        }
        let Ok(at) = self.out_adj[src.index()].binary_search(&(label, dst)) else {
            return false;
        };
        Arc::make_mut(&mut self.out_adj[src.index()]).remove(at);
        let row = Arc::make_mut(&mut self.in_adj[dst.index()]);
        let at = row
            .binary_search(&(label, src))
            .expect("in_adj out of sync");
        row.remove(at);
        let row = Arc::make_mut(&mut self.label_edges[label.index()]);
        let at = row
            .binary_search(&(src, dst))
            .expect("label_edges out of sync");
        row.remove(at);
        self.edge_count -= 1;
        true
    }
}

/// Narrows an adjacency row (sorted by `(label, ...)`) to the run of one label.
#[inline]
fn label_range(row: &[(LabelId, VertexId)], label: LabelId) -> &[(LabelId, VertexId)] {
    let lo = row.partition_point(|&(l, _)| l < label);
    let hi = row.partition_point(|&(l, _)| l <= label);
    &row[lo..hi]
}

/// Incremental builder for [`LabeledMultigraph`].
///
/// Vertices are identified by raw `u32` ids; the vertex count is the maximum
/// id seen plus one, unless raised explicitly with
/// [`GraphBuilder::ensure_vertices`] (isolated vertices matter for `ε` and
/// `R*` results, which contain `(v, v)` for *every* vertex).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    labels: LabelDict,
    triples: Vec<(VertexId, LabelId, VertexId)>,
    min_vertices: usize,
}

impl GraphBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder with pre-allocated space for `edges` edges.
    pub fn with_capacity(edges: usize) -> Self {
        Self {
            labels: LabelDict::new(),
            triples: Vec::with_capacity(edges),
            min_vertices: 0,
        }
    }

    /// Declares that the graph has at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// Adds edge `e(src, label, dst)`, interning the label name.
    pub fn add_edge(&mut self, src: u32, label: &str, dst: u32) -> &mut Self {
        let l = self.labels.intern(label);
        self.add_edge_id(src, l, dst)
    }

    /// Adds an edge with an already-interned label id.
    pub fn add_edge_id(&mut self, src: u32, label: LabelId, dst: u32) -> &mut Self {
        debug_assert!(label.index() < self.labels.len(), "unknown label id");
        self.triples.push((VertexId(src), label, VertexId(dst)));
        self
    }

    /// Interns a label name without adding an edge (useful to fix the
    /// alphabet ordering before bulk loading).
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        self.labels.intern(name)
    }

    /// Number of edges added so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.triples.len()
    }

    /// Finalizes the graph: dedups `(src, label, dst)` triples (the
    /// distinct-labels multigraph constraint) and freezes CSR storage.
    pub fn build(self) -> LabeledMultigraph {
        let GraphBuilder {
            labels,
            mut triples,
            min_vertices,
        } = self;
        let vertex_count = triples
            .iter()
            .flat_map(|&(s, _, d)| [s.index() + 1, d.index() + 1])
            .max()
            .unwrap_or(0)
            .max(min_vertices);

        triples.sort_unstable();
        triples.dedup();
        let edge_count = triples.len();

        // out rows arrive sorted by (src, label, dst) -> already (label, dst) sorted.
        let mut out_adj: Vec<Vec<(LabelId, VertexId)>> = vec![Vec::new(); vertex_count];
        for &(s, l, d) in &triples {
            out_adj[s.index()].push((l, d));
        }
        let mut in_adj: Vec<Vec<(LabelId, VertexId)>> = vec![Vec::new(); vertex_count];
        for &(s, l, d) in &triples {
            in_adj[d.index()].push((l, s));
        }
        for row in &mut in_adj {
            row.sort_unstable();
        }
        let mut label_edges: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); labels.len()];
        for &(s, l, d) in &triples {
            label_edges[l.index()].push((s, d));
        }
        for row in &mut label_edges {
            row.sort_unstable();
        }

        LabeledMultigraph {
            vertex_count,
            labels,
            out_adj: out_adj.into_iter().map(Arc::new).collect(),
            in_adj: in_adj.into_iter().map(Arc::new).collect(),
            label_edges: label_edges.into_iter().map(Arc::new).collect(),
            edge_count,
        }
    }

    /// Like [`GraphBuilder::build`], but validates all vertex ids against an
    /// explicit vertex count instead of inferring it.
    pub fn build_with_vertex_count(mut self, n: usize) -> Result<LabeledMultigraph, GraphError> {
        for &(s, _, d) in &self.triples {
            for v in [s, d] {
                if v.index() >= n {
                    return Err(GraphError::VertexOutOfBounds {
                        vertex: v.raw(),
                        vertex_count: n as u32,
                    });
                }
            }
        }
        self.min_vertices = n;
        Ok(self.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabeledMultigraph {
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1)
            .add_edge(1, "b", 2)
            .add_edge(1, "a", 2)
            .add_edge(2, "a", 0)
            .add_edge(1, "b", 2); // duplicate triple, must be dropped
        b.build()
    }

    #[test]
    fn counts_and_dedup() {
        let g = tiny();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 4); // duplicate (1,b,2) removed
        assert_eq!(g.label_count(), 2);
    }

    #[test]
    fn parallel_edges_with_distinct_labels_are_kept() {
        let g = tiny();
        let a = g.labels().get("a").unwrap();
        let b = g.labels().get("b").unwrap();
        assert!(g.has_edge(VertexId(1), a, VertexId(2)));
        assert!(g.has_edge(VertexId(1), b, VertexId(2)));
    }

    #[test]
    fn out_edges_sorted_by_label_then_dst() {
        let g = tiny();
        let row = g.out_edges(VertexId(1));
        assert!(row.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(row.len(), 2);
    }

    #[test]
    fn out_with_label_narrows_correctly() {
        let g = tiny();
        let a = g.labels().get("a").unwrap();
        let dsts: Vec<u32> = g
            .out_with_label(VertexId(1), a)
            .iter()
            .map(|&(_, d)| d.raw())
            .collect();
        assert_eq!(dsts, vec![2]);
        // Label with no edges from this vertex.
        let b = g.labels().get("b").unwrap();
        assert!(g.out_with_label(VertexId(0), b).is_empty());
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let g = tiny();
        let a = g.labels().get("a").unwrap();
        let srcs: Vec<u32> = g
            .in_with_label(VertexId(2), a)
            .iter()
            .map(|&(_, s)| s.raw())
            .collect();
        assert_eq!(srcs, vec![1]);
        let total_in: usize = g.vertices().map(|v| g.in_edges(v).len()).sum();
        assert_eq!(total_in, g.edge_count());
    }

    #[test]
    fn label_edge_relation() {
        let g = tiny();
        let a = g.labels().get("a").unwrap();
        let edges: Vec<(u32, u32)> = g
            .edges_with_label(a)
            .iter()
            .map(|&(s, d)| (s.raw(), d.raw()))
            .collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.label_edge_count(a), 3);
    }

    #[test]
    fn sources_with_label_distinct_sorted() {
        let mut b = GraphBuilder::new();
        b.add_edge(5, "x", 1)
            .add_edge(5, "x", 2)
            .add_edge(1, "x", 0);
        let g = b.build();
        let x = g.labels().get("x").unwrap();
        assert_eq!(g.sources_with_label(x), vec![VertexId(1), VertexId(5)]);
    }

    #[test]
    fn ensure_vertices_adds_isolated() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1);
        b.ensure_vertices(10);
        let g = b.build();
        assert_eq!(g.vertex_count(), 10);
        assert!(g.out_edges(VertexId(9)).is_empty());
    }

    #[test]
    fn build_with_vertex_count_validates() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 7);
        let err = b.clone().build_with_vertex_count(5).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfBounds {
                vertex: 7,
                vertex_count: 5
            }
        );
        let g = b.build_with_vertex_count(8).unwrap();
        assert_eq!(g.vertex_count(), 8);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.vertex_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree_per_label(), 0.0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn degree_per_label_matches_formula() {
        let g = tiny();
        let expect = 4.0 / (3.0 * 2.0);
        assert!((g.degree_per_label() - expect).abs() < 1e-12);
    }

    #[test]
    fn all_edges_roundtrip() {
        let g = tiny();
        let mut edges: Vec<(u32, u32, u32)> = g
            .all_edges()
            .map(|(s, l, d)| (s.raw(), l.raw(), d.raw()))
            .collect();
        edges.sort_unstable();
        assert_eq!(edges.len(), g.edge_count());
        assert!(edges.contains(&(1, g.labels().get("b").unwrap().raw(), 2)));
    }

    #[test]
    fn self_loops_allowed() {
        let mut b = GraphBuilder::new();
        b.add_edge(3, "a", 3);
        let g = b.build();
        let a = g.labels().get("a").unwrap();
        assert!(g.has_edge(VertexId(3), a, VertexId(3)));
        assert_eq!(g.vertex_count(), 4);
    }
}
