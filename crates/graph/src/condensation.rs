//! Vertex-level reduction: the condensation `Ḡ_R` with self-loop tracking.
//!
//! Section III-B defines `Ḡ_R` by mapping each SCC of `G_R` to one vertex.
//! Two rules matter for Kleene-plus semantics:
//!
//! * edges between two vertices of the *same* SCC become **one self-loop**
//!   on the condensed vertex (any SCC with ≥ 2 members always has internal
//!   edges; a singleton SCC gets a self-loop only if its vertex has a
//!   self-edge in `G_R`);
//! * same-direction edges between two *different* SCCs collapse to one edge.
//!
//! The self-loop distinction is what makes `TC(Ḡ_R)` contain `(s̄, s̄)`
//! exactly when a length-≥1 `R`-path cycle exists inside the SCC, which in
//! turn is what Theorem 1 needs to enumerate `R⁺_G` (not `R*_G`).

use crate::digraph::Digraph;
use crate::ids::SccId;
use crate::scc::Scc;

/// The condensation of a digraph: `Ḡ_R` plus self-loop flags.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// DAG adjacency over SCC ids (self-loops excluded, stored in `self_loop`).
    dag: Digraph,
    /// `self_loop[s]` — whether SCC `s` has an internal edge.
    self_loop: Vec<bool>,
    /// Total edge count of `Ḡ_R` including self-loops (`|Ē_R|`).
    edge_count: usize,
}

impl Condensation {
    /// Builds `Ḡ_R` from a digraph and its SCC decomposition.
    pub fn new(g: &Digraph, scc: &Scc) -> Self {
        let k = scc.count();
        let mut self_loop = vec![false; k];
        let mut cross: Vec<(u32, u32)> = Vec::new();
        for (s, d) in g.edges() {
            let cs = scc.component_of(s);
            let cd = scc.component_of(d);
            if cs == cd {
                self_loop[cs.index()] = true;
            } else {
                cross.push((cs.raw(), cd.raw()));
            }
        }
        let dag = Digraph::from_edges(k, cross);
        let edge_count = dag.edge_count() + self_loop.iter().filter(|&&b| b).count();
        Self {
            dag,
            self_loop,
            edge_count,
        }
    }

    /// Number of condensed vertices `|V̄_R|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.dag.vertex_count()
    }

    /// Number of condensed edges `|Ē_R|`, self-loops included.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-neighbors of SCC `s` in the DAG part (no self-loop), ascending.
    #[inline]
    pub fn out(&self, s: SccId) -> &[u32] {
        self.dag.out(s.raw())
    }

    /// Whether SCC `s` carries a self-loop (has an internal `G_R` edge).
    #[inline]
    pub fn has_self_loop(&self, s: SccId) -> bool {
        self.self_loop[s.index()]
    }

    /// The DAG part of the condensation (cross-SCC edges only).
    #[inline]
    pub fn dag(&self) -> &Digraph {
        &self.dag
    }

    /// Iterates over all `Ḡ_R` edges including self-loops.
    pub fn edges(&self) -> impl Iterator<Item = (SccId, SccId)> + '_ {
        let loops = self
            .self_loop
            .iter()
            .enumerate()
            .filter(|&(_, &b)| b)
            .map(|(s, _)| (SccId::from_usize(s), SccId::from_usize(s)));
        let cross = self.dag.edges().map(|(s, d)| (SccId(s), SccId(d)));
        loops.chain(cross)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::tarjan_scc;

    /// Example 5/6 fixture: G_{b·c} over compact ids {v2,v3,v4,v5,v6} →
    /// {0,1,2,3,4} with edges {(0,2),(0,4),(1,3),(2,0),(3,1)}.
    fn gbc() -> (Digraph, Scc) {
        let g = Digraph::from_edges(5, vec![(0, 2), (0, 4), (1, 3), (2, 0), (3, 1)]);
        let scc = tarjan_scc(&g);
        (g, scc)
    }

    #[test]
    fn example5_condensation_shape() {
        let (g, scc) = gbc();
        let cond = Condensation::new(&g, &scc);
        // V̄_{b·c} = {s̄0, s̄1, s̄2}; Ē_{b·c} = {loop(s{2,4}), s{2,4}->s{6}, loop(s{3,5})}.
        assert_eq!(cond.vertex_count(), 3);
        assert_eq!(cond.edge_count(), 3);
        let s24 = scc.component_of(0); // compact 0 = v2
        let s6 = scc.component_of(4); // compact 4 = v6
        let s35 = scc.component_of(1); // compact 1 = v3
        assert!(cond.has_self_loop(s24));
        assert!(cond.has_self_loop(s35));
        assert!(!cond.has_self_loop(s6));
        assert_eq!(cond.out(s24), &[s6.raw()]);
        assert!(cond.out(s6).is_empty());
        assert!(cond.out(s35).is_empty());
    }

    #[test]
    fn parallel_cross_edges_collapse() {
        // Two SCCs {0,1} and {2,3}; multiple edges between them.
        let g = Digraph::from_edges(
            4,
            vec![(0, 1), (1, 0), (2, 3), (3, 2), (0, 2), (1, 3), (0, 3)],
        );
        let scc = tarjan_scc(&g);
        let cond = Condensation::new(&g, &scc);
        assert_eq!(cond.vertex_count(), 2);
        // 2 self-loops + 1 collapsed cross edge.
        assert_eq!(cond.edge_count(), 3);
    }

    #[test]
    fn singleton_self_loop_rule() {
        // v0 has a self-edge; v1 does not.
        let g = Digraph::from_edges(2, vec![(0, 0), (0, 1)]);
        let scc = tarjan_scc(&g);
        let cond = Condensation::new(&g, &scc);
        assert!(cond.has_self_loop(scc.component_of(0)));
        assert!(!cond.has_self_loop(scc.component_of(1)));
        assert_eq!(cond.edge_count(), 2); // loop + cross
    }

    #[test]
    fn dag_input_stays_dag() {
        let g = Digraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        let scc = tarjan_scc(&g);
        let cond = Condensation::new(&g, &scc);
        assert_eq!(cond.vertex_count(), 4);
        assert_eq!(cond.edge_count(), 4);
        assert!((0..4).all(|s| !cond.has_self_loop(SccId(s))));
    }

    #[test]
    fn edges_iterator_includes_loops_and_cross() {
        let (g, scc) = gbc();
        let cond = Condensation::new(&g, &scc);
        let mut edges: Vec<(u32, u32)> = cond.edges().map(|(a, b)| (a.raw(), b.raw())).collect();
        edges.sort_unstable();
        assert_eq!(edges.len(), 3);
        let loops = edges.iter().filter(|&&(a, b)| a == b).count();
        assert_eq!(loops, 2);
    }

    #[test]
    fn empty_graph_condensation() {
        let g = Digraph::from_edges(0, vec![]);
        let scc = tarjan_scc(&g);
        let cond = Condensation::new(&g, &scc);
        assert_eq!(cond.vertex_count(), 0);
        assert_eq!(cond.edge_count(), 0);
    }

    #[test]
    fn condensation_respects_reverse_topo_ids() {
        let g = Digraph::from_edges(
            6,
            vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2), (3, 4), (4, 5)],
        );
        let scc = tarjan_scc(&g);
        let cond = Condensation::new(&g, &scc);
        for s in 0..cond.vertex_count() as u32 {
            for &d in cond.out(SccId(s)) {
                assert!(d < s, "cross edge {s}->{d} must descend");
            }
        }
    }
}
