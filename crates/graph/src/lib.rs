#![warn(missing_docs)]
//! Graph substrate for the RTC-RPQ engine.
//!
//! This crate provides every graph-shaped building block the paper's
//! pipeline needs, built from scratch:
//!
//! * [`LabeledMultigraph`] — the data model of Section II-A: an
//!   edge-labeled, directed multigraph where parallel edges between an
//!   ordered vertex pair must carry distinct labels.
//! * [`Digraph`] — an unlabeled simple digraph in CSR form; the result of
//!   edge-level reduction (`G_R`) and the condensation (`Ḡ_R`) are both
//!   stored as `Digraph`s.
//! * [`Scc`] / [`tarjan_scc`] — iterative Tarjan strongly-connected-component
//!   decomposition (the paper's vertex-level reduction driver, ref. \[14\]).
//! * [`Condensation`] — `Ḡ_R` with the self-loop bookkeeping that Kleene
//!   plus semantics require.
//! * [`PairSet`] — the canonical set-of-vertex-pairs relation used for every
//!   `R_G` result.
//!
//! Everything is index-based (`u32` ids wrapped in newtypes) and allocation
//! conscious: adjacency is CSR, hot dedup paths use epoch-stamped scratch
//! buffers instead of hash sets.

pub mod bfs;
pub mod bitmatrix;
pub mod condensation;
pub mod csr;
pub mod digraph;
pub mod error;
pub mod fixtures;
pub mod ids;
pub mod label_dict;
pub mod metrics;
pub mod multigraph;
pub mod pairset;
pub mod par;
pub mod rowset;
pub mod scc;
pub mod snapshot;
pub mod stats;
pub mod versioned;

pub use bfs::EpochVisited;
pub use bitmatrix::BitMatrix;
pub use condensation::Condensation;
pub use csr::Csr;
pub use digraph::{Digraph, MappedDigraph, VertexMapping};
pub use error::GraphError;
pub use ids::{LabelId, SccId, VertexId};
pub use label_dict::LabelDict;
pub use metrics::Distribution;
pub use multigraph::{GraphBuilder, LabeledMultigraph};
pub use pairset::{Ends, PairSet};
pub use rowset::{ReprMode, RowSet, RowSetPolicy, RowTable};
pub use scc::{tarjan_scc, Scc};
pub use stats::GraphStats;
pub use versioned::{DeltaSummary, GraphDelta, GraphView, VersionedGraph};
