//! Strongly-typed index newtypes.
//!
//! The engine addresses vertices, labels and SCCs by dense `u32` indices.
//! Newtypes keep the three id spaces from being mixed up while compiling to
//! bare integers (`#[repr(transparent)]`).

use std::fmt;

/// A vertex identifier (`v_i` in the paper, TABLE I).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// An edge-label identifier (`l_i` in the paper, TABLE I).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct LabelId(pub u32);

/// A strongly-connected-component identifier (`s_i` in the paper, TABLE II).
///
/// SCC ids produced by [`crate::tarjan_scc`] are numbered in *reverse
/// topological order* of the condensation: every edge of `Ḡ_R` (other than
/// self-loops) goes from a higher id to a lower id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct SccId(pub u32);

macro_rules! impl_id {
    ($ty:ident, $prefix:literal) => {
        impl $ty {
            /// Wraps a raw `u32` index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Wraps a `usize` index, panicking if it does not fit in `u32`.
            #[inline]
            pub fn from_usize(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize, "id overflow");
                Self(raw as u32)
            }

            /// Returns the raw index as a `usize`, for slice indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $ty {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u32 {
            #[inline]
            fn from(id: $ty) -> u32 {
                id.0
            }
        }
    };
}

impl_id!(VertexId, "v");
impl_id!(LabelId, "l");
impl_id!(SccId, "s");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.raw(), 42);
        assert_eq!(v.index(), 42);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from(42u32), v);
    }

    #[test]
    fn from_usize_matches_new() {
        assert_eq!(VertexId::from_usize(7), VertexId::new(7));
        assert_eq!(LabelId::from_usize(0), LabelId::new(0));
        assert_eq!(SccId::from_usize(123), SccId::new(123));
    }

    #[test]
    fn display_uses_paper_notation() {
        assert_eq!(VertexId::new(3).to_string(), "v3");
        assert_eq!(LabelId::new(1).to_string(), "l1");
        assert_eq!(SccId::new(0).to_string(), "s0");
        assert_eq!(format!("{:?}", VertexId::new(3)), "v3");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert!(SccId::new(0) < SccId::new(10));
    }

    #[test]
    fn ids_are_transparent_u32() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<LabelId>(), 4);
        assert_eq!(std::mem::size_of::<SccId>(), 4);
        assert_eq!(std::mem::size_of::<Option<VertexId>>(), 8);
    }
}
