//! Label dictionary: interning between label names and dense [`LabelId`]s.

use crate::ids::LabelId;
use rustc_hash::FxHashMap;

/// Bidirectional mapping between label strings and dense label ids.
///
/// The paper's `Σ` — the alphabet of the multigraph. Ids are assigned in
/// first-seen order and are dense, so per-label tables can be plain vectors.
#[derive(Clone, Debug, Default)]
pub struct LabelDict {
    names: Vec<String>,
    index: FxHashMap<String, LabelId>,
}

impl LabelDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = LabelId::from_usize(self.names.len());
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Looks up a label by name without interning.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.index.get(name).copied()
    }

    /// Returns the name of a label id.
    pub fn name(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels (`|Σ|`).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId::from_usize(i), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = LabelDict::new();
        let a = d.intern("a");
        let b = d.intern("b");
        assert_ne!(a, b);
        assert_eq!(d.intern("a"), a);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_first_seen_order() {
        let mut d = LabelDict::new();
        assert_eq!(d.intern("x"), LabelId(0));
        assert_eq!(d.intern("y"), LabelId(1));
        assert_eq!(d.intern("x"), LabelId(0));
        assert_eq!(d.intern("z"), LabelId(2));
    }

    #[test]
    fn get_and_name_roundtrip() {
        let mut d = LabelDict::new();
        let id = d.intern("knows");
        assert_eq!(d.get("knows"), Some(id));
        assert_eq!(d.get("likes"), None);
        assert_eq!(d.name(id), "knows");
    }

    #[test]
    fn iter_lists_all_labels() {
        let mut d = LabelDict::new();
        d.intern("a");
        d.intern("b");
        let all: Vec<(u32, String)> = d.iter().map(|(i, n)| (i.raw(), n.to_owned())).collect();
        assert_eq!(all, vec![(0, "a".into()), (1, "b".into())]);
    }

    #[test]
    fn empty_dict() {
        let d = LabelDict::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
