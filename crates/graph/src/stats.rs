//! Dataset statistics in the shape of the paper's TABLE IV.

use crate::multigraph::LabeledMultigraph;
use std::fmt;

/// Summary statistics of a labeled multigraph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// `|V|` — number of vertices.
    pub vertices: usize,
    /// `|E|` — number of edges.
    pub edges: usize,
    /// `|Σ|` — number of distinct labels.
    pub labels: usize,
    /// `|E| / (|V|·|Σ|)` — average vertex degree per label.
    pub degree_per_label: f64,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn of(g: &LabeledMultigraph) -> Self {
        Self {
            vertices: g.vertex_count(),
            edges: g.edge_count(),
            labels: g.label_count(),
            degree_per_label: g.degree_per_label(),
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|V|={} |E|={} |Σ|={} |E|/(|V||Σ|)={:.4}",
            self.vertices, self.edges, self.labels, self.degree_per_label
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multigraph::GraphBuilder;

    #[test]
    fn stats_match_graph() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1)
            .add_edge(1, "b", 2)
            .add_edge(2, "a", 0);
        let g = b.build();
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 3);
        assert_eq!(s.labels, 2);
        assert!((s.degree_per_label - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_formats_table4_row() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1);
        let s = GraphStats::of(&b.build());
        assert_eq!(s.to_string(), "|V|=2 |E|=1 |Σ|=1 |E|/(|V||Σ|)=0.5000");
    }
}
