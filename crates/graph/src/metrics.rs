//! Structural graph metrics beyond the TABLE IV basics.
//!
//! The experiment harness and dataset validation tests use these to
//! characterize generated graphs: degree distributions (R-MAT skew
//! checks), per-label frequencies (workload selectivity), reciprocity
//! (cycle pressure — the raw material of nontrivial SCCs), and the SCC
//! size distribution of the whole graph.

use crate::digraph::Digraph;
use crate::ids::LabelId;
use crate::multigraph::LabeledMultigraph;
use crate::scc::tarjan_scc;

/// Summary of a nonnegative integer distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct Distribution {
    /// Number of observations.
    pub count: usize,
    /// Smallest observation.
    pub min: usize,
    /// Largest observation.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (lower median for even counts).
    pub median: usize,
}

impl Distribution {
    /// Summarizes `values` (need not be sorted). Empty input gives zeros.
    pub fn of(mut values: Vec<usize>) -> Distribution {
        if values.is_empty() {
            return Distribution {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
            };
        }
        values.sort_unstable();
        let count = values.len();
        let sum: usize = values.iter().sum();
        Distribution {
            count,
            min: values[0],
            max: values[count - 1],
            mean: sum as f64 / count as f64,
            median: values[(count - 1) / 2],
        }
    }
}

/// Out-degree distribution over all vertices.
pub fn out_degree_distribution(g: &LabeledMultigraph) -> Distribution {
    Distribution::of(g.vertices().map(|v| g.out_edges(v).len()).collect())
}

/// In-degree distribution over all vertices.
pub fn in_degree_distribution(g: &LabeledMultigraph) -> Distribution {
    Distribution::of(g.vertices().map(|v| g.in_edges(v).len()).collect())
}

/// Edge count per label, in label-id order.
pub fn label_frequencies(g: &LabeledMultigraph) -> Vec<(LabelId, usize)> {
    (0..g.label_count())
        .map(|i| {
            let l = LabelId::from_usize(i);
            (l, g.label_edge_count(l))
        })
        .collect()
}

/// Fraction of (label-ignoring) directed edges whose reverse also exists.
///
/// High reciprocity produces 2-cycles, the seeds of nontrivial SCCs —
/// the regime where vertex-level reduction pays off.
pub fn reciprocity(g: &LabeledMultigraph) -> f64 {
    let mut pairs: Vec<(u32, u32)> = g.all_edges().map(|(s, _, d)| (s.raw(), d.raw())).collect();
    pairs.sort_unstable();
    pairs.dedup();
    if pairs.is_empty() {
        return 0.0;
    }
    let reciprocal = pairs
        .iter()
        .filter(|&&(s, d)| s != d && pairs.binary_search(&(d, s)).is_ok())
        .count();
    reciprocal as f64 / pairs.len() as f64
}

/// SCC size distribution of the label-ignoring graph.
pub fn scc_size_distribution(g: &LabeledMultigraph) -> Distribution {
    let edges: Vec<(u32, u32)> = g.all_edges().map(|(s, _, d)| (s.raw(), d.raw())).collect();
    let dg = Digraph::from_edges(g.vertex_count(), edges);
    let scc = tarjan_scc(&dg);
    Distribution::of(
        (0..scc.count())
            .map(|s| scc.members(crate::ids::SccId(s as u32)).len())
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{paper_graph, triangle};
    use crate::multigraph::GraphBuilder;

    #[test]
    fn distribution_summary() {
        let d = Distribution::of(vec![3, 1, 2, 2, 10]);
        assert_eq!(d.count, 5);
        assert_eq!(d.min, 1);
        assert_eq!(d.max, 10);
        assert_eq!(d.median, 2);
        assert!((d.mean - 3.6).abs() < 1e-12);
        let empty = Distribution::of(vec![]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    fn degree_distributions_paper_graph() {
        let g = paper_graph();
        let out = out_degree_distribution(&g);
        assert_eq!(out.count, 10);
        assert_eq!(out.max, 3); // v2 and v5 have 3 out-edges
        let total_out: f64 = out.mean * out.count as f64;
        assert_eq!(total_out as usize, g.edge_count());
        let inn = in_degree_distribution(&g);
        let total_in: f64 = inn.mean * inn.count as f64;
        assert_eq!(total_in as usize, g.edge_count());
    }

    #[test]
    fn label_frequencies_paper_graph() {
        let g = paper_graph();
        let freq = label_frequencies(&g);
        assert_eq!(freq.len(), 6);
        let total: usize = freq.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.edge_count());
        let c = g.labels().get("c").unwrap();
        let c_count = freq.iter().find(|&&(l, _)| l == c).unwrap().1;
        assert_eq!(c_count, 5);
    }

    #[test]
    fn reciprocity_extremes() {
        // Triangle cycle: no 2-cycles.
        assert_eq!(reciprocity(&triangle()), 0.0);
        // Perfect 2-cycle.
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1).add_edge(1, "a", 0);
        assert_eq!(reciprocity(&b.build()), 1.0);
        // Self-loops don't count as reciprocal.
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 0);
        assert_eq!(reciprocity(&b.build()), 0.0);
        // Empty graph.
        assert_eq!(reciprocity(&GraphBuilder::new().build()), 0.0);
    }

    #[test]
    fn reciprocity_ignores_labels() {
        // Parallel edges with different labels count once.
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1)
            .add_edge(0, "b", 1)
            .add_edge(1, "c", 0);
        let r = reciprocity(&b.build());
        assert!((r - 1.0).abs() < 1e-12, "r={r}");
    }

    #[test]
    fn scc_sizes_paper_graph() {
        // Label-ignoring paper graph: {v2..v6} form one SCC (b/c cycles),
        // {v8, v9} a 2-cycle; v0, v1, v7 trivial... v1 is in the big SCC
        // via v4 -b-> v1 -c-> v2.
        let g = paper_graph();
        let d = scc_size_distribution(&g);
        assert_eq!(d.max, 6); // {v1..v6}
        let total: f64 = d.mean * d.count as f64;
        assert_eq!(total as usize, g.vertex_count());
    }

    #[test]
    fn scc_sizes_triangle() {
        let d = scc_size_distribution(&triangle());
        assert_eq!(d.count, 1);
        assert_eq!(d.max, 3);
    }
}
