//! Compressed sparse row (CSR) storage.
//!
//! A [`Csr`] stores a jagged array of rows in two flat vectors: `offsets`
//! (row boundaries, length `rows + 1`) and `data`. Every adjacency list,
//! SCC membership table and closure table in the engine is a `Csr`, which
//! keeps row access to a single pair of bounds-checked slice reads and the
//! whole structure in two allocations.

use std::fmt;

/// A jagged array stored in compressed sparse row form.
#[derive(Clone, PartialEq, Eq)]
pub struct Csr<T> {
    offsets: Vec<u32>,
    data: Vec<T>,
}

impl<T> Csr<T> {
    /// Creates an empty CSR with zero rows.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            data: Vec::new(),
        }
    }

    /// Creates a CSR with `rows` empty rows.
    pub fn with_empty_rows(rows: usize) -> Self {
        Self {
            offsets: vec![0; rows + 1],
            data: Vec::new(),
        }
    }

    /// Builds a CSR from an iterator of `(row, value)` items.
    ///
    /// Items may arrive in any order; they are counting-sorted into rows.
    /// The relative order of items within one row is preserved (the sort is
    /// stable).
    pub fn from_items<I>(rows: usize, items: I) -> Self
    where
        I: IntoIterator<Item = (usize, T)>,
        T: Copy + Default,
    {
        let items: Vec<(usize, T)> = items.into_iter().collect();
        let mut counts = vec![0u32; rows + 1];
        for &(row, _) in &items {
            debug_assert!(row < rows, "row {row} out of bounds ({rows} rows)");
            counts[row + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut data = vec![T::default(); items.len()];
        let mut cursor = counts;
        for (row, value) in items {
            let at = cursor[row] as usize;
            data[at] = value;
            cursor[row] += 1;
        }
        Self { offsets, data }
    }

    /// Builds a CSR directly from per-row vectors.
    pub fn from_rows<I, R>(rows: I) -> Self
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = T>,
    {
        let mut offsets = vec![0u32];
        let mut data = Vec::new();
        for row in rows {
            data.extend(row);
            debug_assert!(data.len() <= u32::MAX as usize, "CSR data overflow");
            offsets.push(data.len() as u32);
        }
        Self { offsets, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored items across all rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the CSR stores no items at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        let start = self.offsets[i] as usize;
        let end = self.offsets[i + 1] as usize;
        &self.data[start..end]
    }

    /// Returns the length of row `i` without touching the data array.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Iterates over all rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[T]> + '_ {
        (0..self.rows()).map(move |i| self.row(i))
    }

    /// Iterates over `(row_index, item)` pairs in row order.
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, &T)> + '_ {
        (0..self.rows()).flat_map(move |i| self.row(i).iter().map(move |t| (i, t)))
    }

    /// Flat view of the underlying data array.
    #[inline]
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Appends a row built from an iterator. Only valid when constructing a
    /// CSR row-by-row in order.
    pub fn push_row<I: IntoIterator<Item = T>>(&mut self, row: I) {
        self.data.extend(row);
        debug_assert!(self.data.len() <= u32::MAX as usize, "CSR data overflow");
        self.offsets.push(self.data.len() as u32);
    }

    /// Approximate heap footprint in bytes, for the size experiments.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.data.capacity() * std::mem::size_of::<T>()
    }
}

impl<T> Default for Csr<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for Csr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter_rows()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_csr() {
        let csr: Csr<u32> = Csr::new();
        assert_eq!(csr.rows(), 0);
        assert_eq!(csr.len(), 0);
        assert!(csr.is_empty());
    }

    #[test]
    fn with_empty_rows_has_rows_but_no_data() {
        let csr: Csr<u32> = Csr::with_empty_rows(5);
        assert_eq!(csr.rows(), 5);
        assert_eq!(csr.len(), 0);
        for i in 0..5 {
            assert!(csr.row(i).is_empty());
            assert_eq!(csr.row_len(i), 0);
        }
    }

    #[test]
    fn from_items_counting_sort() {
        let csr = Csr::from_items(4, vec![(2, 20u32), (0, 1), (2, 21), (0, 2), (3, 30)]);
        assert_eq!(csr.rows(), 4);
        assert_eq!(csr.row(0), &[1, 2]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[20, 21]);
        assert_eq!(csr.row(3), &[30]);
        assert_eq!(csr.len(), 5);
    }

    #[test]
    fn from_items_is_stable_within_rows() {
        let csr = Csr::from_items(1, vec![(0, 3u32), (0, 1), (0, 2)]);
        assert_eq!(csr.row(0), &[3, 1, 2]);
    }

    #[test]
    fn from_rows_matches_push_row() {
        let a = Csr::from_rows(vec![vec![1u32, 2], vec![], vec![3]]);
        let mut b = Csr::new();
        b.push_row(vec![1u32, 2]);
        b.push_row(vec![]);
        b.push_row(vec![3]);
        assert_eq!(a, b);
        assert_eq!(a.rows(), 3);
        assert_eq!(a.row_len(0), 2);
        assert_eq!(a.row_len(1), 0);
        assert_eq!(a.row_len(2), 1);
    }

    #[test]
    fn iter_entries_yields_row_order() {
        let csr = Csr::from_rows(vec![vec![10u32], vec![20, 21]]);
        let entries: Vec<(usize, u32)> = csr.iter_entries().map(|(r, &v)| (r, v)).collect();
        assert_eq!(entries, vec![(0, 10), (1, 20), (1, 21)]);
    }

    #[test]
    fn iter_rows_covers_all_rows() {
        let csr = Csr::from_rows(vec![vec![1u32], vec![], vec![2, 3]]);
        let rows: Vec<Vec<u32>> = csr.iter_rows().map(|r| r.to_vec()).collect();
        assert_eq!(rows, vec![vec![1], vec![], vec![2, 3]]);
    }

    #[test]
    fn debug_format_lists_rows() {
        let csr = Csr::from_rows(vec![vec![1u32], vec![2]]);
        assert_eq!(format!("{csr:?}"), "[[1], [2]]");
    }
}
