//! Iterative Tarjan strongly-connected-component decomposition.
//!
//! The paper's vertex-level reduction (`G_R → Ḡ_R`, Section III-B) maps each
//! SCC of `G_R` to one vertex and cites Tarjan's algorithm \[14\] as the most
//! efficient way to find them (`O(|V_R| + |E_R|)`). This implementation is
//! fully iterative (explicit DFS stack) so that deep path-shaped graphs
//! cannot overflow the call stack — reduced graphs of sparse datasets like
//! Yago2s are almost entirely long chains.
//!
//! A useful structural property this module guarantees and the closure code
//! relies on: **SCC ids come out in reverse topological order** of the
//! condensation. Every non-loop edge of `Ḡ_R` goes from a higher SCC id to
//! a lower one, so a single ascending sweep visits successors before
//! predecessors.

use crate::csr::Csr;
use crate::digraph::Digraph;
use crate::ids::SccId;

const UNVISITED: u32 = u32::MAX;

/// The SCC decomposition of a digraph.
#[derive(Clone, Debug)]
pub struct Scc {
    comp_of: Vec<u32>,
    members: Csr<u32>,
}

impl Scc {
    /// Number of SCCs (`|V̄_R|`).
    #[inline]
    pub fn count(&self) -> usize {
        self.members.rows()
    }

    /// SCC id containing vertex `v` (compact digraph id).
    #[inline]
    pub fn component_of(&self, v: u32) -> SccId {
        SccId(self.comp_of[v as usize])
    }

    /// Member vertices of SCC `s`, ascending.
    #[inline]
    pub fn members(&self, s: SccId) -> &[u32] {
        self.members.row(s.index())
    }

    /// Number of vertices in SCC `s`.
    #[inline]
    pub fn size(&self, s: SccId) -> usize {
        self.members.row_len(s.index())
    }

    /// The full `vertex → SCC` table.
    #[inline]
    pub fn component_table(&self) -> &[u32] {
        &self.comp_of
    }

    /// Average number of vertices per SCC — the paper reports this as the
    /// indicator of how effective vertex-level reduction is (1.00 for
    /// Yago2s, where the reduction does not help).
    pub fn average_size(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        self.comp_of.len() as f64 / self.count() as f64
    }

    /// Iterates over `(scc, members)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (SccId, &[u32])> + '_ {
        (0..self.count()).map(move |i| (SccId::from_usize(i), self.members.row(i)))
    }

    /// Builds a decomposition directly from a `vertex → SCC id` table.
    ///
    /// Unlike [`tarjan_scc`], the ids carry **no** topological-order
    /// guarantee — this constructor exists so incremental maintenance code
    /// (which renumbers SCCs as they merge and split) can hand back a
    /// decomposition without re-running Tarjan. Every entry must be
    /// `< scc_count` and every id in `0..scc_count` must appear (each SCC
    /// is non-empty); both are debug-asserted.
    pub fn from_component_table(comp_of: Vec<u32>, scc_count: usize) -> Scc {
        debug_assert!(comp_of.iter().all(|&c| (c as usize) < scc_count));
        let members = Csr::from_items(
            scc_count,
            (0..comp_of.len() as u32).map(|v| (comp_of[v as usize] as usize, v)),
        );
        debug_assert!((0..scc_count).all(|s| members.row_len(s) > 0), "empty SCC");
        Scc { comp_of, members }
    }
}

/// Computes SCCs of `g` with an iterative Tarjan DFS.
///
/// Returned SCC ids are in reverse topological order: if the condensation
/// has an edge `s → t` (with `s ≠ t`) then `t < s`.
pub fn tarjan_scc(g: &Digraph) -> Scc {
    let n = g.vertex_count();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut comp_of = vec![UNVISITED; n];
    let mut tarjan_stack: Vec<u32> = Vec::new();
    // (vertex, next out-edge position) frames of the explicit DFS stack.
    let mut frames: Vec<(u32, u32)> = Vec::new();
    let mut next_index = 0u32;
    let mut scc_count = 0u32;

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        tarjan_stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut edge_pos)) = frames.last_mut() {
            let out = g.out(v);
            if (*edge_pos as usize) < out.len() {
                let w = out[*edge_pos as usize];
                *edge_pos += 1;
                if index[w as usize] == UNVISITED {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    tarjan_stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    lowlink[parent as usize] = lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is the root of an SCC: pop the component.
                    loop {
                        let w = tarjan_stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }

    let members = Csr::from_items(
        scc_count as usize,
        (0..n as u32).map(|v| (comp_of[v as usize] as usize, v)),
    );
    Scc { comp_of, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scc_sets(scc: &Scc) -> Vec<Vec<u32>> {
        let mut sets: Vec<Vec<u32>> = scc.iter().map(|(_, m)| m.to_vec()).collect();
        sets.sort();
        sets
    }

    #[test]
    fn empty_graph() {
        let g = Digraph::from_edges(0, vec![]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 0);
        assert_eq!(scc.average_size(), 0.0);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = Digraph::from_edges(3, vec![]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        for v in 0..3 {
            assert_eq!(scc.size(scc.component_of(v)), 1);
        }
    }

    #[test]
    fn simple_cycle_is_one_scc() {
        let g = Digraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.members(SccId(0)), &[0, 1, 2]);
        assert_eq!(scc.average_size(), 3.0);
    }

    #[test]
    fn dag_has_singleton_sccs_in_reverse_topo_order() {
        let g = Digraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 4);
        // Reverse topological order: successors get lower ids.
        for (s, d) in g.edges() {
            assert!(scc.component_of(d) < scc.component_of(s));
        }
    }

    #[test]
    fn example5_sccs_of_gbc() {
        // G_{b·c} from Fig. 5: edges {(2,4),(2,6),(3,5),(4,2),(5,3)} over
        // compact ids {v2,v3,v4,v5,v6} -> {0,1,2,3,4}.
        let g = Digraph::from_edges(5, vec![(0, 2), (0, 4), (1, 3), (2, 0), (3, 1)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3); // s0={v2,v4}, s1={v6}, s2={v3,v5}
        assert_eq!(scc_sets(&scc), vec![vec![0, 2], vec![1, 3], vec![4]]);
        // {v2,v4} and {v3,v5} are nontrivial; {v6} singleton.
        assert_eq!(scc.component_of(0), scc.component_of(2));
        assert_eq!(scc.component_of(1), scc.component_of(3));
        assert_ne!(scc.component_of(0), scc.component_of(4));
    }

    #[test]
    fn self_loop_vertex_is_its_own_scc() {
        let g = Digraph::from_edges(2, vec![(0, 0), (0, 1)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 2);
        assert_eq!(scc.size(scc.component_of(0)), 1);
    }

    #[test]
    fn two_cycles_joined_by_bridge() {
        // 0<->1 -> 2<->3
        let g = Digraph::from_edges(4, vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 2);
        let a = scc.component_of(0);
        let b = scc.component_of(2);
        assert_ne!(a, b);
        // Edge 1->2 crosses from {0,1} to {2,3}: target id must be lower.
        assert!(b < a);
        assert_eq!(scc.members(a), &[0, 1]);
        assert_eq!(scc.members(b), &[2, 3]);
    }

    #[test]
    fn long_chain_does_not_overflow_stack() {
        // 200k-vertex path: a recursive Tarjan would blow the call stack.
        let n = 200_000;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
        let g = Digraph::from_edges(n as usize, edges);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), n as usize);
        assert_eq!(scc.component_of(0), SccId(n - 1)); // source popped last
        assert_eq!(scc.component_of(n - 1), SccId(0)); // sink popped first
    }

    #[test]
    fn reverse_topological_property_on_mixed_graph() {
        // SCCs: {0,1}, {2}, {3,4,5}, with cross edges.
        let g = Digraph::from_edges(
            6,
            vec![(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 5), (5, 3)],
        );
        let scc = tarjan_scc(&g);
        assert_eq!(scc.count(), 3);
        for (s, d) in g.edges() {
            let (cs, cd) = (scc.component_of(s), scc.component_of(d));
            if cs != cd {
                assert!(cd < cs, "edge {s}->{d} violates reverse topo order");
            }
        }
    }

    #[test]
    fn component_table_is_total() {
        let g = Digraph::from_edges(5, vec![(0, 1), (3, 4)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.component_table().len(), 5);
        assert!(scc
            .component_table()
            .iter()
            .all(|&c| (c as usize) < scc.count()));
        // Every vertex appears exactly once across members.
        let total: usize = scc.iter().map(|(_, m)| m.len()).sum();
        assert_eq!(total, 5);
    }
}
