//! Shared test fixtures, most importantly the paper's running example graph.

use crate::multigraph::{GraphBuilder, LabeledMultigraph};

/// The 10-vertex example graph of Fig. 1, reconstructed from the constraints
/// pinned by Examples 1–6.
///
/// The figure itself is not machine-readable in the paper text, but the
/// worked examples fully determine the `b`/`c`/`d` substructure:
///
/// * Example 3: the paths satisfying `b·c` are exactly
///   `{(v2,v4), (v2,v6), (v3,v5), (v4,v2), (v5,v3)}`;
/// * Example 2's traversal of `d·(b·c)+·c` from `v7` exposes the edges
///   `e(v7,d,v4)`, `e(v4,b,v1)`, `e(v1,c,v2)`, `e(v2,c,v5)`, `e(v2,b,v5)`,
///   `e(v2,b,v3)`, `e(v3,b,v2)`, `e(v5,c,v6)`, `e(v5,c,v4)`, `e(v6,c,v3)`;
/// * `(v5,v3) ∈ (b·c)_G` then forces `e(v5,b,v6)` (label-distinct parallel
///   edge alongside `e(v5,c,v6)` — legal in the multigraph model);
/// * `v0`, `v8`, `v9` carry the `a`/`e`/`f` edges of Fig. 1 and must stay
///   outside every `b·c` structure, which the choices below satisfy.
///
/// Every documented example result is re-checked by tests against this
/// fixture: Example 1 (`(d·(b·c)+·c)_G = {(v7,v5), (v7,v3)}`), Example 3/4
/// (edge-level reduction and `TC(G_{b·c})`), Example 5/6 (SCCs and
/// `TC(Ḡ_{b·c})`).
pub fn paper_graph() -> LabeledMultigraph {
    let mut b = GraphBuilder::new();
    b.add_edge(0, "a", 1)
        .add_edge(1, "c", 2)
        .add_edge(2, "b", 3)
        .add_edge(2, "b", 5)
        .add_edge(2, "c", 5)
        .add_edge(3, "b", 2)
        .add_edge(4, "b", 1)
        .add_edge(5, "b", 6)
        .add_edge(5, "c", 6)
        .add_edge(5, "c", 4)
        .add_edge(6, "c", 3)
        .add_edge(7, "d", 4)
        .add_edge(7, "a", 8)
        .add_edge(8, "e", 9)
        .add_edge(9, "f", 8);
    b.build()
}

/// A three-vertex cycle `0 -a-> 1 -a-> 2 -a-> 0`, the smallest graph whose
/// `a⁺` result is the full Cartesian product of its vertices.
pub fn triangle() -> LabeledMultigraph {
    let mut b = GraphBuilder::new();
    b.add_edge(0, "a", 1)
        .add_edge(1, "a", 2)
        .add_edge(2, "a", 0);
    b.build()
}

/// A labeled two-diamond graph used by join-order tests:
/// `0 -a-> {1,2} -b-> 3 -c-> 4`.
pub fn diamond() -> LabeledMultigraph {
    let mut b = GraphBuilder::new();
    b.add_edge(0, "a", 1)
        .add_edge(0, "a", 2)
        .add_edge(1, "b", 3)
        .add_edge(2, "b", 3)
        .add_edge(3, "c", 4);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    #[test]
    fn paper_graph_shape() {
        let g = paper_graph();
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.label_count(), 6); // a b c d e f
    }

    #[test]
    fn paper_graph_has_pinned_edges() {
        let g = paper_graph();
        let b = g.labels().get("b").unwrap();
        let c = g.labels().get("c").unwrap();
        let d = g.labels().get("d").unwrap();
        assert!(g.has_edge(VertexId(7), d, VertexId(4)));
        assert!(g.has_edge(VertexId(4), b, VertexId(1)));
        assert!(g.has_edge(VertexId(1), c, VertexId(2)));
        // Parallel edges with distinct labels between v5 and v6.
        assert!(g.has_edge(VertexId(5), b, VertexId(6)));
        assert!(g.has_edge(VertexId(5), c, VertexId(6)));
    }

    #[test]
    fn paper_graph_example3_bc_paths() {
        // Manual two-hop check of (b·c)_G without any evaluator:
        let g = paper_graph();
        let b = g.labels().get("b").unwrap();
        let c = g.labels().get("c").unwrap();
        let mut pairs = Vec::new();
        for v in g.vertices() {
            for &(_, mid) in g.out_with_label(v, b) {
                for &(_, end) in g.out_with_label(mid, c) {
                    pairs.push((v.raw(), end.raw()));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs, vec![(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)]);
    }

    #[test]
    fn triangle_shape() {
        let g = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label_count(), 1);
    }

    #[test]
    fn diamond_shape() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.label_count(), 3);
    }
}
