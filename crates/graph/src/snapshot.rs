//! On-disk binary snapshot format for [`VersionedGraph`].
//!
//! The serving front-end (`rpq_server`) keeps a [`VersionedGraph`] alive
//! across a stream of queries and deltas; this module makes that state
//! survive a process restart. The format is a small, versioned, little-
//! endian binary layout:
//!
//! ```text
//! offset  field
//! 0       magic          8 bytes  b"RPQGSNP1" (format name + version)
//! 8       epoch          u64      the VersionedGraph epoch
//! 16      vertex_count   u64      |V| (isolated vertices preserved)
//! 24      label_count    u64      |Σ|
//! ...     label names    label_count × (len: u32, UTF-8 bytes)  in id order
//! ...     label rows     label_count × (row_len: u64, row_len × (src: u32, dst: u32))
//! ...     end marker     8 bytes  b"RPQGEND."
//! ```
//!
//! Design notes:
//!
//! * **Label ids are stable**: names are written in dictionary order and
//!   re-interned in that order on load, so a graph that lost all edges of
//!   some label (the alphabet never shrinks) round-trips exactly.
//! * **Per-row edges**: each label's full relation `l_G` is one contiguous
//!   run of sorted `(src, dst)` pairs — the same row the evaluator scans —
//!   so writing is a straight dump of
//!   [`crate::LabeledMultigraph::edges_with_label`].
//! * **The epoch rides along**, which is what lets a restarted engine keep
//!   serving warm cache entries stamped with the pre-restart epoch.
//! * Every load re-validates: magic/version, UTF-8 label names, vertex ids
//!   against the declared count, and the end marker. A truncated file
//!   surfaces as [`GraphError::Snapshot`], never as a silently-shorter
//!   graph.
//!
//! ```
//! use rpq_graph::fixtures::paper_graph;
//! use rpq_graph::{snapshot, VersionedGraph};
//!
//! let vg = VersionedGraph::new(paper_graph());
//! let mut bytes = Vec::new();
//! snapshot::write_snapshot(&vg, &mut bytes).unwrap();
//! let back = snapshot::read_snapshot(&bytes[..]).unwrap();
//! assert_eq!(back.epoch(), vg.epoch());
//! assert_eq!(back.graph().edge_count(), vg.graph().edge_count());
//! ```

use crate::error::GraphError;
use crate::ids::LabelId;
use crate::multigraph::GraphBuilder;
use crate::versioned::VersionedGraph;
use std::io::{Read, Write};
use std::path::Path;

/// Leading magic of a graph snapshot; the trailing byte is the format
/// version. Format sniffers (e.g. `rpq_datasets::io::load_versioned`)
/// compare a file's first bytes against this.
pub const MAGIC: [u8; 8] = *b"RPQGSNP1";

/// Trailing end marker: present iff the file was written to completion.
pub const END_MARKER: [u8; 8] = *b"RPQGEND.";

/// Whether `head` starts with the graph-snapshot magic (any version).
/// The single place the "first 7 bytes name the format" rule is encoded;
/// every sniffer (datasets auto-detection, the serving `load` command)
/// calls this instead of comparing bytes itself.
pub fn matches_magic(head: &[u8]) -> bool {
    head.len() >= 7 && head[..7] == MAGIC[..7]
}

/// Hard cap on a single label name, to refuse absurd length fields from a
/// corrupt header before allocating. Enforced symmetrically: writes fail
/// too, so a save can never produce a file its own reader rejects.
const MAX_LABEL_NAME_BYTES: u32 = 1 << 20;

/// Hard cap on the declared vertex count. Vertex ids are `u32`, but a
/// corrupt header declaring anywhere near `u32::MAX` vertices would make
/// the builder allocate per-vertex rows for tens of gigabytes before any
/// validation could run; `2^30` (~1 billion vertices, ~24 GiB of empty
/// rows) is already beyond what this engine can evaluate and keeps the
/// OOM-from-64-byte-file failure mode out of reach.
const MAX_SNAPSHOT_VERTICES: u64 = 1 << 30;

/// Writes `graph` in snapshot format.
pub fn write_snapshot<W: Write>(graph: &VersionedGraph, w: W) -> Result<(), GraphError> {
    write_graph_snapshot(graph.graph(), graph.epoch(), w)
}

/// [`write_snapshot`] for a bare graph at an explicit epoch (what
/// `Engine::write_snapshot` uses — a borrowed static engine has a
/// [`crate::LabeledMultigraph`] but no [`VersionedGraph`] wrapper).
pub fn write_graph_snapshot<W: Write>(
    g: &crate::LabeledMultigraph,
    epoch: u64,
    mut w: W,
) -> Result<(), GraphError> {
    w.write_all(&MAGIC)?;
    w.write_all(&epoch.to_le_bytes())?;
    w.write_all(&(g.vertex_count() as u64).to_le_bytes())?;
    w.write_all(&(g.label_count() as u64).to_le_bytes())?;
    for (_, name) in g.labels().iter() {
        // Same cap as the reader: never produce a file load would reject.
        if name.len() as u64 > MAX_LABEL_NAME_BYTES as u64 {
            return Err(GraphError::Snapshot(format!(
                "label name of {} bytes exceeds the {MAX_LABEL_NAME_BYTES}-byte snapshot cap",
                name.len()
            )));
        }
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name.as_bytes())?;
    }
    for l in 0..g.label_count() {
        let row = g.edges_with_label(LabelId::from_usize(l));
        w.write_all(&(row.len() as u64).to_le_bytes())?;
        for &(src, dst) in row {
            w.write_all(&src.raw().to_le_bytes())?;
            w.write_all(&dst.raw().to_le_bytes())?;
        }
    }
    w.write_all(&END_MARKER)?;
    w.flush()?;
    Ok(())
}

/// Reads a graph in snapshot format, validating magic, version, label
/// names, vertex bounds and the end marker.
///
/// Consumes exactly the snapshot's bytes from `r`, so a snapshot section
/// can be embedded in a larger stream (the engine snapshot of `rpq_core`
/// does this).
pub fn read_snapshot<R: Read>(mut r: R) -> Result<VersionedGraph, GraphError> {
    let mut magic = [0u8; 8];
    read_exact(&mut r, &mut magic, "magic")?;
    if !matches_magic(&magic) {
        return Err(GraphError::Snapshot(
            "bad magic: not a graph snapshot file".into(),
        ));
    }
    if magic[7] != MAGIC[7] {
        return Err(GraphError::Snapshot(format!(
            "unsupported snapshot version '{}' (this build reads version '{}')",
            magic[7] as char, MAGIC[7] as char,
        )));
    }
    let epoch = read_u64(&mut r, "epoch")?;
    let vertex_count = read_u64(&mut r, "vertex count")?;
    if vertex_count > MAX_SNAPSHOT_VERTICES {
        return Err(GraphError::Snapshot(format!(
            "vertex count {vertex_count} exceeds the {MAX_SNAPSHOT_VERTICES}-vertex cap"
        )));
    }
    let label_count = read_u64(&mut r, "label count")?;

    let mut builder = GraphBuilder::new();
    let mut labels = Vec::new();
    for i in 0..label_count {
        let len = read_u32(&mut r, "label name length")?;
        if len > MAX_LABEL_NAME_BYTES {
            return Err(GraphError::Snapshot(format!(
                "label {i} name length {len} exceeds the {MAX_LABEL_NAME_BYTES}-byte cap"
            )));
        }
        let mut buf = vec![0u8; len as usize];
        read_exact(&mut r, &mut buf, "label name")?;
        let name = String::from_utf8(buf)
            .map_err(|_| GraphError::Snapshot(format!("label {i} name is not valid UTF-8")))?;
        let id = builder.intern_label(&name);
        if id.index() as u64 != i {
            return Err(GraphError::Snapshot(format!(
                "duplicate label name '{name}' in dictionary"
            )));
        }
        labels.push(id);
    }
    for &label in &labels {
        let row_len = read_u64(&mut r, "edge row length")?;
        for _ in 0..row_len {
            let src = read_u32(&mut r, "edge source")?;
            let dst = read_u32(&mut r, "edge target")?;
            builder.add_edge_id(src, label, dst);
        }
    }
    let mut end = [0u8; 8];
    read_exact(&mut r, &mut end, "end marker")?;
    if end != END_MARKER {
        return Err(GraphError::Snapshot(
            "missing end marker: snapshot was not written to completion".into(),
        ));
    }
    let graph = builder.build_with_vertex_count(vertex_count as usize)?;
    Ok(VersionedGraph::restore(graph, epoch))
}

/// Writes `graph` to a snapshot file.
pub fn save_snapshot(graph: &VersionedGraph, path: &Path) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_snapshot(graph, std::io::BufWriter::new(file))
}

/// Loads a graph from a snapshot file.
pub fn load_snapshot(path: &Path) -> Result<VersionedGraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_snapshot(std::io::BufReader::new(file))
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), GraphError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            GraphError::Snapshot(format!("truncated snapshot: unexpected EOF reading {what}"))
        } else {
            GraphError::Io(e.to_string())
        }
    })
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    read_exact(r, &mut buf, what)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    read_exact(r, &mut buf, what)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::paper_graph;
    use crate::multigraph::LabeledMultigraph;
    use crate::versioned::GraphDelta;

    fn assert_same_graph(a: &LabeledMultigraph, b: &LabeledMultigraph) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.label_count(), b.label_count());
        for (l, name) in a.labels().iter() {
            assert_eq!(b.labels().name(l), name, "label id {l} name");
            assert_eq!(a.edges_with_label(l), b.edges_with_label(l), "row of {l}");
        }
        for v in a.vertices() {
            assert_eq!(a.out_edges(v), b.out_edges(v), "out row of {v}");
            assert_eq!(a.in_edges(v), b.in_edges(v), "in row of {v}");
        }
    }

    fn roundtrip(vg: &VersionedGraph) -> VersionedGraph {
        let mut bytes = Vec::new();
        write_snapshot(vg, &mut bytes).unwrap();
        read_snapshot(&bytes[..]).unwrap()
    }

    #[test]
    fn paper_graph_roundtrips() {
        let vg = VersionedGraph::new(paper_graph());
        let back = roundtrip(&vg);
        assert_eq!(back.epoch(), 0);
        assert_same_graph(back.graph(), vg.graph());
    }

    #[test]
    fn epoch_and_mutations_survive() {
        let mut vg = VersionedGraph::new(paper_graph());
        let mut delta = GraphDelta::new();
        delta.insert(0, "new_label", 9).delete(7, "d", 2);
        vg.apply(&delta);
        vg.apply(&GraphDelta::new()); // empty delta still bumps the epoch
        let back = roundtrip(&vg);
        assert_eq!(back.epoch(), 2);
        assert_same_graph(back.graph(), vg.graph());
    }

    #[test]
    fn empty_label_rows_and_isolated_vertices_survive() {
        // Delete the only edge of a label: the id must survive the trip.
        let mut vg = VersionedGraph::new(paper_graph());
        let mut delta = GraphDelta::new();
        delta.ensure_vertices(32);
        for (s, l, d) in paper_graph()
            .all_edges()
            .map(|(s, l, d)| (s.raw(), paper_graph().labels().name(l).to_owned(), d.raw()))
            .filter(|(_, l, _)| l == "d")
            .collect::<Vec<_>>()
        {
            delta.delete(s, &l, d);
        }
        vg.apply(&delta);
        let d_id = vg.graph().labels().get("d").unwrap();
        assert!(vg.graph().edges_with_label(d_id).is_empty());
        let back = roundtrip(&vg);
        assert_eq!(back.graph().labels().get("d"), Some(d_id));
        assert_eq!(back.graph().vertex_count(), 32);
        assert_same_graph(back.graph(), vg.graph());
    }

    #[test]
    fn empty_graph_roundtrips() {
        let vg = VersionedGraph::new(GraphBuilder::new().build());
        let back = roundtrip(&vg);
        assert_eq!(back.graph().vertex_count(), 0);
        assert_eq!(back.graph().edge_count(), 0);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_snapshot(&b"NOTASNAP________"[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(ref m) if m.contains("magic")),
            "{err}"
        );
        // An edge-list text file is also cleanly rejected.
        let err = read_snapshot(&b"# vertices 5\n0 a 1\n"[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(ref m) if m.contains("magic")),
            "{err}"
        );
    }

    #[test]
    fn wrong_version_is_rejected() {
        let vg = VersionedGraph::new(paper_graph());
        let mut bytes = Vec::new();
        write_snapshot(&vg, &mut bytes).unwrap();
        bytes[7] = b'9';
        let err = read_snapshot(&bytes[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(ref m) if m.contains("version")),
            "{err}"
        );
    }

    #[test]
    fn truncation_at_every_prefix_is_detected() {
        let vg = VersionedGraph::new(paper_graph());
        let mut bytes = Vec::new();
        write_snapshot(&vg, &mut bytes).unwrap();
        // Every strict prefix must fail (truncated), never succeed.
        for cut in 0..bytes.len() {
            let err = read_snapshot(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, GraphError::Snapshot(_)),
                "prefix of {cut} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn corrupt_end_marker_is_detected() {
        let vg = VersionedGraph::new(paper_graph());
        let mut bytes = Vec::new();
        write_snapshot(&vg, &mut bytes).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        let err = read_snapshot(&bytes[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(ref m) if m.contains("end marker")),
            "{err}"
        );
    }

    #[test]
    fn out_of_range_vertex_id_is_rejected() {
        // Hand-build a snapshot declaring 2 vertices but referencing v7.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // epoch
        bytes.extend_from_slice(&2u64.to_le_bytes()); // vertex_count
        bytes.extend_from_slice(&1u64.to_le_bytes()); // label_count
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(b"a");
        bytes.extend_from_slice(&1u64.to_le_bytes()); // row length
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&END_MARKER);
        let err = read_snapshot(&bytes[..]).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfBounds {
                vertex: 7,
                vertex_count: 2
            }
        );
    }

    #[test]
    fn absurd_vertex_count_is_rejected_before_allocation() {
        // A ~40-byte file declaring u32::MAX vertices must error, not OOM.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // epoch
        bytes.extend_from_slice(&(u32::MAX as u64).to_le_bytes()); // vertex_count
        bytes.extend_from_slice(&0u64.to_le_bytes()); // label_count
        bytes.extend_from_slice(&END_MARKER);
        let err = read_snapshot(&bytes[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(ref m) if m.contains("vertex cap")),
            "{err}"
        );
    }

    #[test]
    fn absurd_label_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes()); // one label...
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // ...4 GiB long
        let err = read_snapshot(&bytes[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(ref m) if m.contains("cap")),
            "{err}"
        );
    }

    #[test]
    fn invalid_utf8_label_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        let err = read_snapshot(&bytes[..]).unwrap_err();
        assert!(
            matches!(err, GraphError::Snapshot(ref m) if m.contains("UTF-8")),
            "{err}"
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rpq_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.snap");
        let mut vg = VersionedGraph::new(paper_graph());
        let mut delta = GraphDelta::new();
        delta.insert(1, "x", 8);
        vg.apply(&delta);
        save_snapshot(&vg, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        assert_eq!(back.epoch(), 1);
        assert_same_graph(back.graph(), vg.graph());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_consumes_exactly_the_snapshot_bytes() {
        // Embeddability: trailing bytes after the end marker are left
        // unread for the enclosing stream.
        let vg = VersionedGraph::new(paper_graph());
        let mut bytes = Vec::new();
        write_snapshot(&vg, &mut bytes).unwrap();
        bytes.extend_from_slice(b"TRAILER");
        let mut cursor = &bytes[..];
        let back = read_snapshot(&mut cursor).unwrap();
        assert_same_graph(back.graph(), vg.graph());
        assert_eq!(cursor, b"TRAILER");
    }
}
