//! Unlabeled simple digraphs in CSR form.
//!
//! Both reduction levels of the paper produce graphs of this shape:
//! `G_R` (edge-level reduction, Section III-A) and `Ḡ_R` (vertex-level
//! reduction, Section III-B) are unlabeled, directed, *simple* graphs —
//! multi-edges collapse because labels have been erased.
//!
//! A [`Digraph`] uses dense compact ids `0..n`. When the vertex set is a
//! subset of another graph's vertices (as `V_R ⊆ V`), a [`VertexMapping`]
//! carries the compact ↔ original translation.

use crate::csr::Csr;
use crate::ids::VertexId;
use crate::pairset::PairSet;
use rustc_hash::FxHashMap;

/// An unlabeled simple directed graph over compact vertex ids `0..n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Digraph {
    out: Csr<u32>,
    edge_count: usize,
}

impl Digraph {
    /// Builds a digraph with `n` vertices from an edge list.
    ///
    /// Duplicate edges are removed (simple-graph invariant); self-loops are
    /// kept — they are meaningful for Kleene plus.
    pub fn from_edges(n: usize, mut edges: Vec<(u32, u32)>) -> Self {
        edges.sort_unstable();
        edges.dedup();
        let edge_count = edges.len();
        let out = Csr::from_items(n, edges.into_iter().map(|(s, d)| (s as usize, d)));
        Self { out, edge_count }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.out.rows()
    }

    /// Number of (deduplicated) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-neighbors of `v`, sorted ascending.
    #[inline]
    pub fn out(&self, v: u32) -> &[u32] {
        self.out.row(v as usize)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: u32) -> usize {
        self.out.row_len(v as usize)
    }

    /// Whether edge `(src, dst)` exists.
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.out(src).binary_search(&dst).is_ok()
    }

    /// Iterates over all edges in `(src, dst)` order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.out.iter_entries().map(|(s, &d)| (s as u32, d))
    }

    /// The reverse digraph (every edge flipped).
    pub fn reverse(&self) -> Digraph {
        let edges: Vec<(u32, u32)> = self.edges().map(|(s, d)| (d, s)).collect();
        Digraph::from_edges(self.vertex_count(), edges)
    }

    /// Whether any vertex has a self-loop.
    pub fn has_any_self_loop(&self) -> bool {
        self.edges().any(|(s, d)| s == d)
    }
}

/// Translation between compact digraph ids and original graph vertices.
///
/// `V_R` — the vertex set of an edge-level reduced graph — only contains
/// vertices incident to some `R`-path, so it is usually much smaller than
/// `V`. The mapping is the bridge Algorithm 2 uses when joining `Pre_G`
/// (over original ids) with the RTC (over compact/SCC ids).
#[derive(Clone, Debug, Default)]
pub struct VertexMapping {
    to_original: Vec<VertexId>,
    to_compact: FxHashMap<VertexId, u32>,
}

impl VertexMapping {
    /// Builds a mapping from a sorted list of distinct original vertices.
    pub fn from_sorted_vertices(vertices: Vec<VertexId>) -> Self {
        debug_assert!(vertices.windows(2).all(|w| w[0] < w[1]));
        let to_compact = vertices
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        Self {
            to_original: vertices,
            to_compact,
        }
    }

    /// Number of mapped vertices (`|V_R|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.to_original.len()
    }

    /// Whether the mapping is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.to_original.is_empty()
    }

    /// Original vertex for a compact id.
    #[inline]
    pub fn original(&self, compact: u32) -> VertexId {
        self.to_original[compact as usize]
    }

    /// Compact id for an original vertex, if the vertex is in `V_R`.
    #[inline]
    pub fn compact(&self, v: VertexId) -> Option<u32> {
        self.to_compact.get(&v).copied()
    }

    /// All original vertices, ascending.
    pub fn originals(&self) -> &[VertexId] {
        &self.to_original
    }
}

/// A digraph whose vertices are a remapped subset of another graph's
/// vertices: the edge-level reduced graph `G_R` (and its friends).
#[derive(Clone, Debug)]
pub struct MappedDigraph {
    /// Adjacency over compact ids.
    pub graph: Digraph,
    /// Compact ↔ original translation.
    pub mapping: VertexMapping,
}

impl MappedDigraph {
    /// Builds `G_R` from the evaluation result `R_G`: every pair becomes one
    /// edge, and `V_R` is exactly the set of incident vertices.
    pub fn from_pairset(pairs: &PairSet) -> Self {
        let mut vertices: Vec<VertexId> = Vec::with_capacity(pairs.len());
        for (s, d) in pairs.iter() {
            vertices.push(s);
            vertices.push(d);
        }
        vertices.sort_unstable();
        vertices.dedup();
        let mapping = VertexMapping::from_sorted_vertices(vertices);
        let edges: Vec<(u32, u32)> = pairs
            .iter()
            .map(|(s, d)| {
                (
                    mapping.compact(s).expect("source in mapping"),
                    mapping.compact(d).expect("target in mapping"),
                )
            })
            .collect();
        let graph = Digraph::from_edges(mapping.len(), edges);
        MappedDigraph { graph, mapping }
    }

    /// Number of vertices `|V_R|`.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of edges `|E_R|`.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Translates an edge iterator back to original vertex ids.
    pub fn original_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.graph
            .edges()
            .map(move |(s, d)| (self.mapping.original(s), self.mapping.original(d)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups() {
        let g = Digraph::from_edges(3, vec![(0, 1), (1, 2), (0, 1)]);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.out(0), &[1]);
        assert_eq!(g.out(1), &[2]);
        assert_eq!(g.out(2), &[] as &[u32]);
    }

    #[test]
    fn self_loops_are_kept() {
        let g = Digraph::from_edges(2, vec![(0, 0), (0, 1)]);
        assert!(g.has_edge(0, 0));
        assert!(g.has_any_self_loop());
        let h = Digraph::from_edges(2, vec![(0, 1)]);
        assert!(!h.has_any_self_loop());
    }

    #[test]
    fn reverse_flips_edges() {
        let g = Digraph::from_edges(3, vec![(0, 1), (1, 2)]);
        let r = g.reverse();
        assert!(r.has_edge(1, 0));
        assert!(r.has_edge(2, 1));
        assert_eq!(r.edge_count(), 2);
        assert_eq!(r.reverse(), g);
    }

    #[test]
    fn edges_iterates_in_order() {
        let g = Digraph::from_edges(3, vec![(1, 0), (0, 2), (0, 1)]);
        let edges: Vec<(u32, u32)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 0)]);
    }

    #[test]
    fn out_degree() {
        let g = Digraph::from_edges(3, vec![(0, 1), (0, 2)]);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(2), 0);
    }

    #[test]
    fn mapping_roundtrip() {
        let m = VertexMapping::from_sorted_vertices(vec![VertexId(2), VertexId(5), VertexId(9)]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.compact(VertexId(5)), Some(1));
        assert_eq!(m.compact(VertexId(3)), None);
        assert_eq!(m.original(2), VertexId(9));
        assert_eq!(m.originals(), &[VertexId(2), VertexId(5), VertexId(9)]);
    }

    #[test]
    fn mapped_digraph_from_pairset() {
        // Example 3's E_{b·c}: {(2,4),(2,6),(3,5),(4,2),(5,3)}.
        let pairs: PairSet = [(2u32, 4u32), (2, 6), (3, 5), (4, 2), (5, 3)]
            .into_iter()
            .collect();
        let gr = MappedDigraph::from_pairset(&pairs);
        assert_eq!(gr.vertex_count(), 5); // V_{b·c} = {2,3,4,5,6}
        assert_eq!(gr.edge_count(), 5);
        let mut back: Vec<(u32, u32)> = gr
            .original_edges()
            .map(|(s, d)| (s.raw(), d.raw()))
            .collect();
        back.sort_unstable();
        assert_eq!(back, vec![(2, 4), (2, 6), (3, 5), (4, 2), (5, 3)]);
    }

    #[test]
    fn mapped_digraph_empty() {
        let gr = MappedDigraph::from_pairset(&PairSet::new());
        assert_eq!(gr.vertex_count(), 0);
        assert_eq!(gr.edge_count(), 0);
    }
}
