#![warn(missing_docs)]
//! Dataset substrate for the evaluation (Section V-A).
//!
//! The paper experiments on synthetic R-MAT graphs generated with TrillionG
//! \[18\] and four real datasets (TABLE IV). Neither TrillionG nor the real
//! downloads are available here, so this crate builds the closest synthetic
//! equivalents (see `DESIGN.md` §4 for the substitution argument):
//!
//! * [`rmat`] — an R-MAT \[17\] edge sampler with the standard skew
//!   parameters, uniform random edge labels and deterministic seeding.
//!   `rmat_n(N)` reproduces the paper's `RMAT_N` family: `2^13` vertices,
//!   `2^(N+13)` edges, 4 labels ⇒ per-label degree `2^(N-2)`.
//! * [`surrogate`] — generators matching the exact `|V|, |E|, |Σ|` rows of
//!   TABLE IV for Robots, Advogato, Youtube_Sampled, and a scaled Yago2s.
//! * [`workload`] — the multiple-RPQ sets of Section V-A: a shared closure
//!   body `R` (1–3 concatenated labels) wrapped in per-query
//!   `Pre·R⁺·Post` with single-label Pre/Post; larger sets contain smaller
//!   ones.
//! * [`structured`] — generators with a controlled SCC structure (cycle
//!   clusters, paths, uniform random), the knob behind the
//!   `scc_sensitivity` ablation.
//! * [`io`] — a plain-text edge-list format for persisting datasets.
//! * [`dynamic`] — interleaved update/query streams ([`GraphDelta`]
//!   batches) for exercising `Engine::apply_delta` and incremental RTC
//!   maintenance.
//!
//! [`GraphDelta`]: rpq_graph::GraphDelta
//!
//! ```
//! use rpq_datasets::rmat::rmat_n_scaled;
//! use rpq_datasets::workload::{alphabet_of, generate_workload, WorkloadConfig};
//!
//! let g = rmat_n_scaled(3, 8, 42); // 256 vertices, per-label degree 2
//! assert_eq!(g.vertex_count(), 256);
//! let sets = generate_workload(&alphabet_of(&g), &WorkloadConfig::default());
//! assert_eq!(sets.len(), 30); // 10 Rs per length, lengths 1–3
//! ```

pub mod dynamic;
pub mod io;
pub mod rmat;
pub mod structured;
pub mod surrogate;
pub mod workload;

pub use dynamic::{generate_dynamic_workload, DynamicStep, DynamicWorkload, DynamicWorkloadConfig};
pub use rmat::{rmat_graph, rmat_n, RmatConfig};
pub use structured::{cycle_clusters, cycle_graph, erdos_renyi, path_graph, CycleClusterConfig};
pub use surrogate::{
    advogato_like, advogato_like_scaled, robots_like, yago2s_like, youtube_like,
    youtube_like_scaled, SurrogateSpec,
};
pub use workload::{generate_workload, MultiQuerySet, WorkloadConfig};
