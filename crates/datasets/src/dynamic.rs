//! Dynamic-workload generation: interleaved update/query streams.
//!
//! The paper's evaluation is static — build once, query many. The
//! serving-engine north star needs the other axis too: a stream of
//! [`GraphDelta`] update batches interleaved with query rounds, driven
//! through `Engine::apply_delta`, so benches and examples can measure
//! incremental RTC maintenance against rebuild-from-scratch under
//! controlled churn (update batch size as a fraction of `|E|`, mix of
//! insertions/deletions, deliberate delete-then-reinsert patterns, and
//! occasional brand-new labels).
//!
//! The generator only *plans* the stream — it never mutates the input
//! graph. It mirrors [`rpq_graph::VersionedGraph::apply`]'s semantics
//! (deletions before insertions within one delta) while tracking the
//! evolving edge set, so every planned deletion targets an edge that
//! really exists at its point in the stream, and reinsertions draw from
//! edges the stream itself deleted earlier.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_graph::{GraphDelta, LabeledMultigraph};
use rustc_hash::FxHashSet;

/// Parameters of a generated update/query stream.
#[derive(Clone, Debug)]
pub struct DynamicWorkloadConfig {
    /// Number of update→query rounds.
    pub rounds: usize,
    /// Edge operations per update batch (the "delta size"; benches use
    /// ≤ 1% of `|E|` for the small-delta regime).
    pub updates_per_round: usize,
    /// Fraction of operations that are insertions (the rest delete).
    pub insert_fraction: f64,
    /// Fraction of insertions drawn from previously deleted edges — the
    /// delete-then-reinsert pattern that exercises SCC split-then-merge.
    pub reinsert_fraction: f64,
    /// Every `n`-th round introduces one edge with a brand-new label
    /// (`dyn<round>`); `0` never does.
    pub new_label_every: usize,
    /// RNG seed (streams are deterministic per seed).
    pub seed: u64,
}

impl Default for DynamicWorkloadConfig {
    fn default() -> Self {
        Self {
            rounds: 10,
            updates_per_round: 16,
            insert_fraction: 0.5,
            reinsert_fraction: 0.25,
            new_label_every: 0,
            seed: 0xD1A_5EED,
        }
    }
}

/// One step of the interleaved stream.
#[derive(Clone, Debug)]
pub enum DynamicStep {
    /// Apply this delta (`Engine::apply_delta`).
    Update(GraphDelta),
    /// Run the query set; the payload is the 0-based round index.
    QueryRound(usize),
}

/// A planned update/query stream over some base graph.
#[derive(Clone, Debug)]
pub struct DynamicWorkload {
    /// Alternating `Update` / `QueryRound` steps, one pair per round.
    pub steps: Vec<DynamicStep>,
    /// Edge count after all updates (for sanity checks and sizing).
    pub final_edge_count: usize,
}

impl DynamicWorkload {
    /// The update deltas only, in stream order.
    pub fn deltas(&self) -> impl Iterator<Item = &GraphDelta> {
        self.steps.iter().filter_map(|s| match s {
            DynamicStep::Update(d) => Some(d),
            DynamicStep::QueryRound(_) => None,
        })
    }
}

/// Plans an interleaved update/query stream over `graph`.
///
/// Deterministic per [`DynamicWorkloadConfig::seed`]. Panics if the graph
/// has no labels (nothing to insert).
pub fn generate_dynamic_workload(
    graph: &LabeledMultigraph,
    config: &DynamicWorkloadConfig,
) -> DynamicWorkload {
    assert!(
        graph.label_count() > 0,
        "dynamic workload needs a labeled base graph"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let labels: Vec<String> = graph.labels().iter().map(|(_, n)| n.to_owned()).collect();
    // Evolving edge state, by label *name* so stream-introduced labels mix
    // in uniformly. `edges` is the sampling list; `present` the membership
    // oracle (indices into a name table keep tuples hashable and small).
    let mut names: Vec<String> = labels.clone();
    let name_id = |names: &mut Vec<String>, name: &str| -> u32 {
        match names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                names.push(name.to_owned());
                (names.len() - 1) as u32
            }
        }
    };
    let mut edges: Vec<(u32, u32, u32)> = graph
        .all_edges()
        .map(|(s, l, d)| (s.raw(), l.raw(), d.raw()))
        .collect();
    let mut present: FxHashSet<(u32, u32, u32)> = edges.iter().copied().collect();
    let mut deleted_pool: Vec<(u32, u32, u32)> = Vec::new();
    let n = graph.vertex_count().max(2) as u32;

    let mut steps = Vec::with_capacity(config.rounds * 2);
    for round in 0..config.rounds {
        let mut delta = GraphDelta::new();
        let ops = config.updates_per_round;
        let insert_ops = ((ops as f64) * config.insert_fraction).round() as usize;
        let delete_ops = ops - insert_ops;
        // Deletions first — matching `VersionedGraph::apply` order, so the
        // tracked state stays exact.
        for _ in 0..delete_ops {
            if edges.is_empty() {
                break;
            }
            let at = rng.gen_range(0..edges.len());
            let edge = edges.swap_remove(at);
            present.remove(&edge);
            delta.delete(edge.0, &names[edge.1 as usize], edge.2);
            deleted_pool.push(edge);
            if deleted_pool.len() > 4096 {
                deleted_pool.swap_remove(0);
            }
        }
        for i in 0..insert_ops {
            let fresh_label =
                config.new_label_every > 0 && round % config.new_label_every == 0 && i == 0;
            let edge = if fresh_label {
                let l = name_id(&mut names, &format!("dyn{round}"));
                (rng.gen_range(0..n), l, rng.gen_range(0..n))
            } else if !deleted_pool.is_empty() && rng.gen_bool(config.reinsert_fraction) {
                deleted_pool.swap_remove(rng.gen_range(0..deleted_pool.len()))
            } else {
                let l = rng.gen_range(0..labels.len()) as u32;
                (rng.gen_range(0..n), l, rng.gen_range(0..n))
            };
            delta.insert(edge.0, &names[edge.1 as usize], edge.2);
            if present.insert(edge) {
                edges.push(edge);
            }
        }
        steps.push(DynamicStep::Update(delta));
        steps.push(DynamicStep::QueryRound(round));
    }
    DynamicWorkload {
        steps,
        final_edge_count: edges.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::{GraphBuilder, VersionedGraph};

    fn base() -> LabeledMultigraph {
        let mut b = GraphBuilder::new();
        for v in 0..20u32 {
            b.add_edge(v, "a", (v + 1) % 20);
            b.add_edge(v, "b", (v + 7) % 20);
        }
        b.build()
    }

    #[test]
    fn stream_shape_and_determinism() {
        let cfg = DynamicWorkloadConfig {
            rounds: 5,
            updates_per_round: 8,
            ..DynamicWorkloadConfig::default()
        };
        let g = base();
        let w1 = generate_dynamic_workload(&g, &cfg);
        let w2 = generate_dynamic_workload(&g, &cfg);
        assert_eq!(w1.steps.len(), 10); // update + query per round
        assert_eq!(w1.deltas().count(), 5);
        // Determinism: identical plans for identical seeds.
        for (a, b) in w1.deltas().zip(w2.deltas()) {
            assert_eq!(
                a.inserts().collect::<Vec<_>>(),
                b.inserts().collect::<Vec<_>>()
            );
            assert_eq!(
                a.deletes().collect::<Vec<_>>(),
                b.deletes().collect::<Vec<_>>()
            );
        }
        let w3 = generate_dynamic_workload(
            &g,
            &DynamicWorkloadConfig {
                seed: 99,
                ..cfg.clone()
            },
        );
        let same = w1
            .deltas()
            .zip(w3.deltas())
            .all(|(a, b)| a.inserts().collect::<Vec<_>>() == b.inserts().collect::<Vec<_>>());
        assert!(!same, "different seeds should plan different streams");
    }

    #[test]
    fn tracked_edge_count_matches_application() {
        let g = base();
        let cfg = DynamicWorkloadConfig {
            rounds: 12,
            updates_per_round: 10,
            insert_fraction: 0.4,
            reinsert_fraction: 0.5,
            new_label_every: 3,
            seed: 7,
        };
        let w = generate_dynamic_workload(&g, &cfg);
        let mut vg = VersionedGraph::new(g);
        for delta in w.deltas() {
            vg.apply(delta);
        }
        // The generator's bookkeeping agrees with real application: every
        // planned delete hit an existing edge, every insert tracked.
        assert_eq!(vg.graph().edge_count(), w.final_edge_count);
        assert_eq!(vg.epoch(), 12);
    }

    #[test]
    fn new_labels_appear_on_schedule() {
        let g = base();
        let cfg = DynamicWorkloadConfig {
            rounds: 4,
            updates_per_round: 6,
            insert_fraction: 1.0,
            new_label_every: 2,
            ..DynamicWorkloadConfig::default()
        };
        let w = generate_dynamic_workload(&g, &cfg);
        let all_labels: FxHashSet<String> = w
            .deltas()
            .flat_map(|d| d.labels().map(str::to_owned))
            .collect();
        assert!(all_labels.contains("dyn0"));
        assert!(all_labels.contains("dyn2"));
        assert!(!all_labels.contains("dyn1"));
    }

    #[test]
    fn delete_heavy_stream_drains_gracefully() {
        // More deletes than edges: the generator stops deleting when the
        // graph runs dry instead of planning bogus deletes.
        let mut b = GraphBuilder::new();
        b.add_edge(0, "a", 1).add_edge(1, "a", 2);
        let g = b.build();
        let cfg = DynamicWorkloadConfig {
            rounds: 3,
            updates_per_round: 5,
            insert_fraction: 0.0,
            ..DynamicWorkloadConfig::default()
        };
        let w = generate_dynamic_workload(&g, &cfg);
        assert_eq!(w.final_edge_count, 0);
        let mut vg = VersionedGraph::new(g);
        for delta in w.deltas() {
            vg.apply(delta);
        }
        assert_eq!(vg.graph().edge_count(), 0);
    }
}
