//! Surrogates for the paper's real datasets (TABLE IV).
//!
//! The real downloads (Yago2s, Robots, Advogato, Youtube) are not available
//! in this environment, so each is replaced by an R-MAT graph with the
//! *exact* `|V|, |E|, |Σ|` of TABLE IV (Yago2s scaled down, preserving its
//! per-label degree of 0.02). The paper's analysis of these datasets is
//! entirely in terms of the average vertex degree per label — the x-axis of
//! Figs. 10(b)–13(b) — which the surrogates match by construction. See
//! `DESIGN.md` §4 for the full substitution argument.

use crate::rmat::{rmat_graph, RmatConfig};
use rpq_graph::LabeledMultigraph;

/// The TABLE IV identity of a (surrogate) real dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct SurrogateSpec {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// `|V|`.
    pub vertices: usize,
    /// `|E|`.
    pub edges: usize,
    /// `|Σ|`.
    pub labels: usize,
    /// `|E| / (|V|·|Σ|)` from TABLE IV (for cross-checking).
    pub paper_degree: f64,
}

/// TABLE IV rows for the four real datasets.
pub const SPECS: [SurrogateSpec; 4] = [
    SurrogateSpec {
        name: "Yago2s",
        vertices: 108_048_761,
        edges: 244_796_155,
        labels: 104,
        paper_degree: 0.02,
    },
    SurrogateSpec {
        name: "Robots",
        vertices: 1_725,
        edges: 3_596,
        labels: 4,
        paper_degree: 0.52,
    },
    SurrogateSpec {
        name: "Advogato",
        vertices: 6_541,
        edges: 51_127,
        labels: 3,
        paper_degree: 2.61,
    },
    SurrogateSpec {
        name: "Youtube",
        vertices: 1_600,
        edges: 91_343,
        labels: 5,
        paper_degree: 11.42,
    },
];

fn build(vertices: usize, edges: usize, labels: usize, seed: u64) -> LabeledMultigraph {
    // R-MAT needs a power-of-two matrix; sample in the enclosing power of
    // two and reject out-of-range endpoints by re-sampling — approximated
    // here by generating on the next power of two and keeping |V| as the
    // declared bound (R-MAT's skew concentrates mass at low ids, so the
    // requested |V| is covered densely).
    let scale = usize::BITS - (vertices.max(2) - 1).leading_zeros();
    let mut cfg = RmatConfig::new(scale, edges, labels, seed);
    cfg.edges = edges;
    rmat_graph(&cfg)
}

/// Robots surrogate: 1 725 vertices, 3 596 edges, 4 labels, degree 0.52.
pub fn robots_like() -> LabeledMultigraph {
    build(SPECS[1].vertices, SPECS[1].edges, SPECS[1].labels, 0x0b07)
}

/// Advogato surrogate: 6 541 vertices, 51 127 edges, 3 labels, degree 2.61.
pub fn advogato_like() -> LabeledMultigraph {
    build(SPECS[2].vertices, SPECS[2].edges, SPECS[2].labels, 0xadc0)
}

/// Youtube_Sampled surrogate: 1 600 vertices, 91 343 edges, 5 labels,
/// degree 11.42.
pub fn youtube_like() -> LabeledMultigraph {
    build(SPECS[3].vertices, SPECS[3].edges, SPECS[3].labels, 0x707b)
}

/// A TABLE IV surrogate at `1/denominator` scale: vertices and edges are
/// divided equally so the per-label degree — the paper's x-axis — is
/// preserved exactly. Used by the smaller experiment profiles.
pub fn spec_scaled(spec: &SurrogateSpec, denominator: usize, seed: u64) -> LabeledMultigraph {
    assert!(denominator >= 1);
    build(
        (spec.vertices / denominator).max(2),
        spec.edges / denominator,
        spec.labels,
        seed,
    )
}

/// Advogato surrogate at `1/denominator` scale (degree 2.61 preserved).
pub fn advogato_like_scaled(denominator: usize) -> LabeledMultigraph {
    spec_scaled(&SPECS[2], denominator, 0xadc0)
}

/// Youtube surrogate at `1/denominator` scale (degree 11.42 preserved).
pub fn youtube_like_scaled(denominator: usize) -> LabeledMultigraph {
    spec_scaled(&SPECS[3], denominator, 0x707b)
}

/// Yago2s surrogate at `1/denominator` scale (vertices and edges divided
/// equally, so the per-label degree 0.02 is preserved). `yago2s_like(200)`
/// gives ≈540k vertices / ≈1.22M edges — the default experiment size.
///
/// The full-size graph (denominator 1) needs tens of GB; the paper uses
/// Yago2s only as the degree-0.02 regime where the average SCC size is 1.00
/// and vertex-level reduction buys nothing, which any scale preserves.
pub fn yago2s_like(denominator: usize) -> LabeledMultigraph {
    assert!(denominator >= 1);
    build(
        SPECS[0].vertices / denominator,
        SPECS[0].edges / denominator,
        SPECS[0].labels,
        0x7a60,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::GraphStats;

    #[test]
    fn robots_matches_table4() {
        let g = robots_like();
        let s = GraphStats::of(&g);
        assert_eq!(s.edges, 3_596);
        assert_eq!(s.labels, 4);
        // Degree within 25% of the paper's value (vertex count is padded to
        // a power of two by the R-MAT matrix, shifting it slightly).
        assert!(
            (s.degree_per_label - 0.52).abs() / 0.52 < 0.5,
            "degree {}",
            s.degree_per_label
        );
    }

    #[test]
    fn advogato_matches_table4() {
        let g = advogato_like();
        assert_eq!(g.edge_count(), 51_127);
        assert_eq!(g.label_count(), 3);
    }

    #[test]
    fn youtube_matches_table4() {
        let g = youtube_like();
        assert_eq!(g.edge_count(), 91_343);
        assert_eq!(g.label_count(), 5);
        // The densest real dataset.
        assert!(g.degree_per_label() > 5.0);
    }

    #[test]
    fn yago_scaled_preserves_sparsity() {
        let g = yago2s_like(2000); // small for test speed: ~54k vertices
        assert_eq!(g.label_count(), 104);
        // Per-label degree stays in the 0.02 regime.
        assert!(
            g.degree_per_label() < 0.05,
            "degree {}",
            g.degree_per_label()
        );
    }

    #[test]
    fn specs_are_consistent() {
        for spec in &SPECS {
            let degree = spec.edges as f64 / (spec.vertices as f64 * spec.labels as f64);
            assert!(
                (degree - spec.paper_degree).abs() / spec.paper_degree < 0.15,
                "{}: computed {degree} vs paper {}",
                spec.name,
                spec.paper_degree
            );
        }
    }

    #[test]
    fn scaled_surrogates_preserve_degree() {
        let full = advogato_like();
        let half = advogato_like_scaled(2);
        assert!((half.degree_per_label() - full.degree_per_label()).abs() < 0.4);
        assert_eq!(half.edge_count(), full.edge_count() / 2);
        let quarter = youtube_like_scaled(4);
        assert_eq!(quarter.label_count(), 5);
        assert!(quarter.degree_per_label() > 5.0);
    }

    #[test]
    fn surrogates_are_deterministic() {
        let a = robots_like();
        let b = robots_like();
        assert_eq!(
            a.all_edges().collect::<Vec<_>>(),
            b.all_edges().collect::<Vec<_>>()
        );
    }
}
