//! R-MAT synthetic graph generation.
//!
//! The recursive matrix model of Chakrabarti, Zhan & Faloutsos \[17\]: each
//! edge endpoint pair is sampled by recursively descending into one of the
//! four quadrants of the adjacency matrix with probabilities `(a, b, c, d)`.
//! TrillionG \[18\] (the paper's generator) uses the same model; we default to
//! its canonical skew `a=0.57, b=0.19, c=0.19, d=0.05`.
//!
//! Labels are assigned uniformly at random, reproducing the paper's
//! "we randomly added a label to each edge" step. Generation is
//! deterministic per seed. Because the data model deduplicates
//! `(src, label, dst)` triples, the generator *tops up* until the requested
//! number of distinct edges is reached (bounded retries), so the
//! `|E|/(|V|·|Σ|)` degree parameter is exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_graph::{GraphBuilder, LabeledMultigraph};
use rustc_hash::FxHashSet;

/// R-MAT generation parameters.
#[derive(Clone, Debug)]
pub struct RmatConfig {
    /// log2 of the vertex count.
    pub scale: u32,
    /// Number of distinct `(src, label, dst)` edges to generate.
    pub edges: usize,
    /// Number of labels (`|Σ|`), named `l0..l{n-1}`.
    pub labels: usize,
    /// Quadrant probabilities; must sum to ~1.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// RNG seed (generation is fully deterministic per seed).
    pub seed: u64,
}

impl RmatConfig {
    /// The canonical TrillionG skew with the given size parameters.
    pub fn new(scale: u32, edges: usize, labels: usize, seed: u64) -> Self {
        Self {
            scale,
            edges,
            labels,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            d: 0.05,
            seed,
        }
    }

    /// Vertex count (`2^scale`).
    pub fn vertex_count(&self) -> usize {
        1usize << self.scale
    }
}

/// Generates an edge-labeled R-MAT multigraph.
pub fn rmat_graph(config: &RmatConfig) -> LabeledMultigraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.vertex_count();
    let mut builder = GraphBuilder::with_capacity(config.edges);
    builder.ensure_vertices(n);
    // Fix the alphabet ordering up front so label ids are stable.
    let label_ids: Vec<_> = (0..config.labels)
        .map(|i| builder.intern_label(&format!("l{i}")))
        .collect();

    let mut seen: FxHashSet<(u32, u32, u32)> = FxHashSet::default();
    seen.reserve(config.edges);
    // Top up to the exact edge count; cap attempts so dense corner cases
    // (edges close to n²·labels) cannot loop forever.
    let max_attempts = config.edges.saturating_mul(20).max(1024);
    let mut attempts = 0usize;
    while seen.len() < config.edges && attempts < max_attempts {
        attempts += 1;
        let (src, dst) = sample_edge(&mut rng, config);
        let label = label_ids[rng.gen_range(0..config.labels)];
        if seen.insert((src, label.raw(), dst)) {
            builder.add_edge_id(src, label, dst);
        }
    }
    builder.build()
}

/// The paper's `RMAT_N` family: `2^13` vertices, `2^(N+13)` edges, 4 labels.
/// Per-label vertex degree is `2^(N-2)`.
pub fn rmat_n(n: u32, seed: u64) -> LabeledMultigraph {
    rmat_graph(&RmatConfig::new(13, 1usize << (n + 13), 4, seed))
}

/// A scaled `RMAT_N`-shaped graph: `2^scale` vertices with the same
/// per-label degree `2^(N-2)` as `RMAT_N`. Used by the fast experiment
/// profiles (`|V| = 2^11`) — the degree parameter, which is what the
/// paper's analysis depends on, is preserved exactly.
pub fn rmat_n_scaled(n: u32, scale: u32, seed: u64) -> LabeledMultigraph {
    let edges = 1usize << (n + scale);
    rmat_graph(&RmatConfig::new(scale, edges, 4, seed))
}

fn sample_edge(rng: &mut StdRng, config: &RmatConfig) -> (u32, u32) {
    let (mut x0, mut x1) = (0u64, (1u64 << config.scale) - 1);
    let (mut y0, mut y1) = (0u64, (1u64 << config.scale) - 1);
    let ab = config.a + config.b;
    let abc = ab + config.c;
    while x0 < x1 || y0 < y1 {
        let r: f64 = rng.gen();
        let (right, down) = if r < config.a {
            (false, false)
        } else if r < ab {
            (true, false)
        } else if r < abc {
            (false, true)
        } else {
            (true, true)
        };
        if x0 < x1 {
            let mid = x0 + (x1 - x0) / 2;
            if right {
                x0 = mid + 1;
            } else {
                x1 = mid;
            }
        }
        if y0 < y1 {
            let mid = y0 + (y1 - y0) / 2;
            if down {
                y0 = mid + 1;
            } else {
                y1 = mid;
            }
        }
    }
    // R-MAT quadrant convention: x = source, y = destination.
    (x0 as u32, y0 as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::GraphStats;

    #[test]
    fn exact_sizes() {
        let g = rmat_graph(&RmatConfig::new(8, 1000, 4, 42));
        assert_eq!(g.vertex_count(), 256);
        assert_eq!(g.edge_count(), 1000);
        assert_eq!(g.label_count(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat_graph(&RmatConfig::new(8, 500, 3, 7));
        let b = rmat_graph(&RmatConfig::new(8, 500, 3, 7));
        let ea: Vec<_> = a.all_edges().collect();
        let eb: Vec<_> = b.all_edges().collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = rmat_graph(&RmatConfig::new(8, 500, 3, 1));
        let b = rmat_graph(&RmatConfig::new(8, 500, 3, 2));
        let ea: Vec<_> = a.all_edges().collect();
        let eb: Vec<_> = b.all_edges().collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn rmat_n_family_shape() {
        // RMAT_0 at reduced check size is impractical here; verify the
        // formulas on RMAT_0 (2^13 vertices, 2^13 edges).
        let g = rmat_n(0, 42);
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 1 << 13);
        assert_eq!(s.edges, 1 << 13);
        assert_eq!(s.labels, 4);
        // Degree per label = 2^(0-2) = 0.25.
        assert!((s.degree_per_label - 0.25).abs() < 1e-9);
    }

    #[test]
    fn rmat_n_scaled_preserves_degree() {
        let g = rmat_n_scaled(3, 10, 42); // 1024 vertices, 8192 edges
        assert_eq!(g.vertex_count(), 1024);
        assert_eq!(g.edge_count(), 8192);
        // Degree per label = 2^(3-2) = 2.
        assert!((g.degree_per_label() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn skew_produces_hubs() {
        // With a=0.57 the low-id quadrant is heavily favored: vertex 0's
        // out-degree should far exceed the average.
        let g = rmat_graph(&RmatConfig::new(10, 10_000, 1, 123));
        let avg = 10_000.0 / 1024.0;
        let deg0 = g.out_edges(rpq_graph::VertexId(0)).len() as f64;
        assert!(deg0 > avg * 5.0, "deg0={deg0}, avg={avg}");
    }

    #[test]
    fn uniform_quadrants_are_not_skewed() {
        let cfg = RmatConfig {
            a: 0.25,
            b: 0.25,
            c: 0.25,
            d: 0.25,
            ..RmatConfig::new(10, 10_000, 1, 123)
        };
        let g = rmat_graph(&cfg);
        let deg0 = g.out_edges(rpq_graph::VertexId(0)).len() as f64;
        let avg = 10_000.0 / 1024.0;
        assert!(
            deg0 < avg * 5.0,
            "uniform should not produce hub at 0: {deg0}"
        );
    }

    #[test]
    fn dense_request_terminates() {
        // Request more distinct triples than attempts allow on a tiny
        // matrix; must terminate with fewer edges rather than loop.
        let g = rmat_graph(&RmatConfig::new(2, 1_000, 1, 5));
        assert!(g.edge_count() <= 16); // at most n² · |Σ| possible
    }

    #[test]
    fn all_vertices_in_range() {
        let g = rmat_graph(&RmatConfig::new(6, 2_000, 2, 9));
        for (s, _, d) in g.all_edges() {
            assert!(s.index() < 64);
            assert!(d.index() < 64);
        }
    }
}
