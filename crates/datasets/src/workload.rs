//! Multiple-RPQ workload generation (Section V-A).
//!
//! The paper's controlled workload: every query is a batch unit
//! `Pre·R⁺·Post` where `Pre` and `Post` are single labels and `R` is a
//! concatenation of 1–3 labels. Each *multiple-RPQ set* shares one `R`
//! (the common sub-query) across its queries, which differ in their
//! `(Pre, Post)` pair. Set sizes are 1, 2, 4, 6, 8, 10, and "a larger
//! multiple RPQ set contains smaller multiple RPQ sets" — realized here by
//! generating the maximum number of queries per set and prefix-slicing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_regex::Regex;

/// Workload generation parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of distinct `R`s generated per length (the paper draws 10 per
    /// length for lengths 1–3).
    pub rs_per_length: usize,
    /// Lengths of `R` as a concatenation of labels.
    pub r_lengths: Vec<usize>,
    /// Maximum queries per set (the largest set size requested).
    pub queries_per_set: usize,
    /// Closure type applied to R: `true` for `R*` instead of `R+`.
    pub use_star: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            rs_per_length: 10,
            r_lengths: vec![1, 2, 3],
            queries_per_set: 10,
            use_star: false,
            seed: 0x5eed,
        }
    }
}

/// One multiple-RPQ set: queries sharing the closure body `r`.
#[derive(Clone, Debug)]
pub struct MultiQuerySet {
    /// The shared common sub-query `R` (a label concatenation).
    pub r: Regex,
    /// The full query list `Pre·R⁺·Post`; take a prefix for smaller sets.
    pub queries: Vec<Regex>,
}

impl MultiQuerySet {
    /// The first `k` queries — the paper's nested-set construction.
    pub fn prefix(&self, k: usize) -> &[Regex] {
        &self.queries[..k.min(self.queries.len())]
    }
}

/// Generates the multiple-RPQ sets of Section V-A over the given alphabet.
///
/// Deterministic per seed. Panics if the alphabet is empty.
pub fn generate_workload(alphabet: &[String], config: &WorkloadConfig) -> Vec<MultiQuerySet> {
    assert!(!alphabet.is_empty(), "workload needs a non-empty alphabet");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut sets = Vec::with_capacity(config.rs_per_length * config.r_lengths.len());
    for &len in &config.r_lengths {
        for _ in 0..config.rs_per_length {
            let r_labels: Vec<Regex> = (0..len)
                .map(|_| Regex::label(pick(&mut rng, alphabet)))
                .collect();
            let r = Regex::concat(r_labels);
            let closure = if config.use_star {
                Regex::star(r.clone())
            } else {
                Regex::plus(r.clone())
            };
            let queries = (0..config.queries_per_set)
                .map(|_| {
                    let pre = Regex::label(pick(&mut rng, alphabet));
                    let post = Regex::label(pick(&mut rng, alphabet));
                    Regex::concat(vec![pre, closure.clone(), post])
                })
                .collect();
            sets.push(MultiQuerySet { r, queries });
        }
    }
    sets
}

fn pick<'a>(rng: &mut StdRng, alphabet: &'a [String]) -> &'a str {
    &alphabet[rng.gen_range(0..alphabet.len())]
}

/// Convenience: the alphabet of a graph as owned names, in label-id order.
pub fn alphabet_of(graph: &rpq_graph::LabeledMultigraph) -> Vec<String> {
    graph.labels().iter().map(|(_, n)| n.to_owned()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_regex::{decompose, to_dnf};

    fn alphabet() -> Vec<String> {
        (0..4).map(|i| format!("l{i}")).collect()
    }

    #[test]
    fn default_workload_shape() {
        let sets = generate_workload(&alphabet(), &WorkloadConfig::default());
        // 10 Rs per length × 3 lengths.
        assert_eq!(sets.len(), 30);
        for set in &sets {
            assert_eq!(set.queries.len(), 10);
        }
    }

    #[test]
    fn queries_are_batch_units_sharing_r() {
        let sets = generate_workload(&alphabet(), &WorkloadConfig::default());
        for set in &sets {
            for q in &set.queries {
                let clauses = to_dnf(q).unwrap();
                assert_eq!(clauses.len(), 1, "workload queries are single clauses");
                let unit = decompose(&clauses[0]);
                let (r, _) = unit.closure.expect("workload queries contain a closure");
                assert_eq!(r, set.r, "closure body must be the shared R");
                // Pre is a single label, Post a single label.
                assert!(matches!(unit.pre, Regex::Label(_)));
                assert_eq!(unit.post.len(), 1);
            }
        }
    }

    #[test]
    fn r_lengths_match_config() {
        let cfg = WorkloadConfig {
            rs_per_length: 2,
            r_lengths: vec![1, 2, 3],
            ..WorkloadConfig::default()
        };
        let sets = generate_workload(&alphabet(), &cfg);
        assert_eq!(sets.len(), 6);
        let len_of = |r: &Regex| match r {
            Regex::Label(_) => 1,
            Regex::Concat(parts) => parts.len(),
            other => panic!("unexpected R shape {other:?}"),
        };
        assert_eq!(len_of(&sets[0].r), 1);
        assert_eq!(len_of(&sets[2].r), 2);
        assert_eq!(len_of(&sets[4].r), 3);
    }

    #[test]
    fn nested_prefix_sets() {
        let sets = generate_workload(&alphabet(), &WorkloadConfig::default());
        let set = &sets[0];
        // The 4-query set is a prefix of the 10-query set.
        assert_eq!(set.prefix(4), &set.queries[..4]);
        assert_eq!(set.prefix(100).len(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_workload(&alphabet(), &WorkloadConfig::default());
        let b = generate_workload(&alphabet(), &WorkloadConfig::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.r, y.r);
            assert_eq!(x.queries, y.queries);
        }
        let c = generate_workload(
            &alphabet(),
            &WorkloadConfig {
                seed: 999,
                ..WorkloadConfig::default()
            },
        );
        assert!(a.iter().zip(&c).any(|(x, y)| x.queries != y.queries));
    }

    #[test]
    fn star_workload() {
        let cfg = WorkloadConfig {
            use_star: true,
            rs_per_length: 1,
            r_lengths: vec![2],
            ..WorkloadConfig::default()
        };
        let sets = generate_workload(&alphabet(), &cfg);
        for q in &sets[0].queries {
            let clauses = to_dnf(q).unwrap();
            let unit = decompose(&clauses[0]);
            let (_, kind) = unit.closure.unwrap();
            assert_eq!(kind, rpq_regex::ClosureKind::Star);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty alphabet")]
    fn empty_alphabet_panics() {
        let _ = generate_workload(&[], &WorkloadConfig::default());
    }
}
