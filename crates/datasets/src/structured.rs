//! Structured graph generators with controlled SCC shape.
//!
//! The paper's entire performance story hinges on one structural variable:
//! the average number of vertices per SCC of `G_R` (Section V-B1 explains
//! the Yago2s exception by its average SCC size of 1.00). These generators
//! make that variable a direct knob, which the `scc_sensitivity` bench and
//! several invariant tests exploit:
//!
//! * [`cycle_clusters`] — disjoint directed cycles of a chosen size wired
//!   together by forward (acyclic) edges: average SCC size ≈ cluster size.
//! * [`path_graph`] / [`cycle_graph`] — the two extremes (all-trivial SCCs
//!   vs one giant SCC).
//! * [`erdos_renyi`] — uniform random edges, for un-skewed comparisons
//!   with R-MAT.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rpq_graph::{GraphBuilder, LabeledMultigraph};

/// A directed path `0 → 1 → … → n-1`, every edge labeled `label`.
/// Every SCC of any reduction of this graph is trivial.
pub fn path_graph(n: u32, label: &str) -> LabeledMultigraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n as usize);
    for v in 0..n.saturating_sub(1) {
        b.add_edge(v, label, v + 1);
    }
    b.build()
}

/// A directed cycle over `n` vertices, every edge labeled `label`.
/// The whole graph is one SCC.
pub fn cycle_graph(n: u32, label: &str) -> LabeledMultigraph {
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n as usize);
    if n > 0 {
        for v in 0..n {
            b.add_edge(v, label, (v + 1) % n);
        }
    }
    b.build()
}

/// Configuration for [`cycle_clusters`].
#[derive(Clone, Debug)]
pub struct CycleClusterConfig {
    /// Number of disjoint cycles.
    pub clusters: u32,
    /// Vertices per cycle (1 = trivial SCCs, no self-loops).
    pub cluster_size: u32,
    /// Random forward (acyclic) edges between clusters.
    pub inter_edges: usize,
    /// Labels assigned round-robin to cycle edges and randomly to
    /// inter-cluster edges.
    pub labels: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Disjoint directed cycles connected by forward edges.
///
/// With `cluster_size = k`, every cycle is one SCC of size `k`, and
/// inter-cluster edges only run from lower-indexed to higher-indexed
/// clusters, so they can never merge SCCs: the average SCC size is exactly
/// `k` for any single-label reduction that covers the cycles.
pub fn cycle_clusters(config: &CycleClusterConfig) -> LabeledMultigraph {
    assert!(config.labels > 0, "need at least one label");
    assert!(config.cluster_size > 0, "cluster size must be positive");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.clusters * config.cluster_size;
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n as usize);
    let label_names: Vec<String> = (0..config.labels).map(|i| format!("l{i}")).collect();

    for c in 0..config.clusters {
        let base = c * config.cluster_size;
        if config.cluster_size > 1 {
            for i in 0..config.cluster_size {
                let from = base + i;
                let to = base + (i + 1) % config.cluster_size;
                // Cycle edges carry every label so any single-label
                // reduction sees the full cycle.
                for name in &label_names {
                    b.add_edge(from, name, to);
                }
            }
        }
    }
    if config.clusters > 1 {
        for _ in 0..config.inter_edges {
            let from_cluster = rng.gen_range(0..config.clusters - 1);
            let to_cluster = rng.gen_range(from_cluster + 1..config.clusters);
            let from = from_cluster * config.cluster_size + rng.gen_range(0..config.cluster_size);
            let to = to_cluster * config.cluster_size + rng.gen_range(0..config.cluster_size);
            let label = &label_names[rng.gen_range(0..config.labels)];
            b.add_edge(from, label, to);
        }
    }
    b.build()
}

/// A uniform (Erdős–Rényi-style) random multigraph with exactly `edges`
/// distinct `(src, label, dst)` triples (best effort under a retry cap).
pub fn erdos_renyi(n: u32, edges: usize, labels: usize, seed: u64) -> LabeledMultigraph {
    assert!(labels > 0 && n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    b.ensure_vertices(n as usize);
    let label_ids: Vec<_> = (0..labels)
        .map(|i| b.intern_label(&format!("l{i}")))
        .collect();
    let mut seen = rustc_hash::FxHashSet::default();
    let cap = edges.saturating_mul(20).max(1024);
    let mut attempts = 0;
    while seen.len() < edges && attempts < cap {
        attempts += 1;
        let triple = (
            rng.gen_range(0..n),
            rng.gen_range(0..labels),
            rng.gen_range(0..n),
        );
        if seen.insert(triple) {
            b.add_edge_id(triple.0, label_ids[triple.1], triple.2);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_eval::ProductEvaluator;
    use rpq_graph::tarjan_scc;
    use rpq_graph::MappedDigraph;
    use rpq_regex::Regex;

    #[test]
    fn path_graph_shape() {
        let g = path_graph(10, "a");
        assert_eq!(g.vertex_count(), 10);
        assert_eq!(g.edge_count(), 9);
    }

    #[test]
    fn cycle_graph_is_one_scc() {
        let g = cycle_graph(8, "a");
        let r_g = ProductEvaluator::new(&g, &Regex::parse("a").unwrap()).evaluate();
        let gr = MappedDigraph::from_pairset(&r_g);
        let scc = tarjan_scc(&gr.graph);
        assert_eq!(scc.count(), 1);
        assert_eq!(scc.average_size(), 8.0);
    }

    #[test]
    fn cycle_clusters_control_scc_size() {
        for cluster_size in [1u32, 4, 8] {
            let g = cycle_clusters(&CycleClusterConfig {
                clusters: 16,
                cluster_size,
                inter_edges: 30,
                labels: 2,
                seed: 5,
            });
            assert_eq!(g.vertex_count(), (16 * cluster_size) as usize);
            let r_g = ProductEvaluator::new(&g, &Regex::parse("l0").unwrap()).evaluate();
            let gr = MappedDigraph::from_pairset(&r_g);
            let scc = tarjan_scc(&gr.graph);
            if cluster_size == 1 {
                // No cycles at all: every SCC trivial.
                assert_eq!(scc.average_size(), 1.0);
            } else {
                // Covered vertices cluster into size-k SCCs; inter-cluster
                // edges may add a few trivial SCCs at endpoints.
                assert!(
                    scc.average_size() >= cluster_size as f64 * 0.5,
                    "cluster_size {cluster_size}: avg {}",
                    scc.average_size()
                );
            }
        }
    }

    #[test]
    fn inter_cluster_edges_never_merge_sccs() {
        let g = cycle_clusters(&CycleClusterConfig {
            clusters: 6,
            cluster_size: 5,
            inter_edges: 60,
            labels: 1,
            seed: 9,
        });
        let r_g = ProductEvaluator::new(&g, &Regex::parse("l0").unwrap()).evaluate();
        let gr = MappedDigraph::from_pairset(&r_g);
        let scc = tarjan_scc(&gr.graph);
        for (_, members) in scc.iter() {
            assert!(members.len() <= 5, "an SCC exceeded the cluster size");
        }
    }

    #[test]
    fn erdos_renyi_exact_size() {
        let g = erdos_renyi(64, 500, 3, 7);
        assert_eq!(g.vertex_count(), 64);
        assert_eq!(g.edge_count(), 500);
        assert_eq!(g.label_count(), 3);
        // Deterministic.
        let h = erdos_renyi(64, 500, 3, 7);
        assert_eq!(
            g.all_edges().collect::<Vec<_>>(),
            h.all_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn degenerate_configs() {
        let g = cycle_graph(0, "a");
        assert_eq!(g.vertex_count(), 0);
        let g = path_graph(1, "a");
        assert_eq!(g.edge_count(), 0);
        let g = cycle_clusters(&CycleClusterConfig {
            clusters: 1,
            cluster_size: 3,
            inter_edges: 10, // ignored with a single cluster
            labels: 1,
            seed: 1,
        });
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }
}
