//! Plain-text edge-list persistence, plus format auto-detection against
//! the binary snapshot format of [`rpq_graph::snapshot`].
//!
//! Format: one `src label dst` triple per line, whitespace-separated;
//! `#`-prefixed lines and blank lines are ignored. An optional header
//! `# vertices N` pins the vertex count (for trailing isolated vertices).
//!
//! Header semantics (pinned by tests):
//!
//! * the header may appear anywhere in the file; when it appears more
//!   than once, the **last occurrence wins** (a writer appending to a
//!   dump can restate it);
//! * a header is a *declaration*, not a minimum: once declared, any edge
//!   referencing a vertex id `≥ N` is a [`GraphError::VertexOutOfBounds`]
//!   error — out-of-range ids no longer silently grow the vertex set;
//! * a malformed header (`# vertices x`) is treated as an ordinary
//!   comment, like every other `#` line.

use rpq_graph::{GraphBuilder, GraphError, LabeledMultigraph, VersionedGraph};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `graph` in edge-list format.
pub fn write_edge_list<W: Write>(graph: &LabeledMultigraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {}", graph.vertex_count())?;
    for (src, label, dst) in graph.all_edges() {
        writeln!(
            w,
            "{} {} {}",
            src.raw(),
            graph.labels().name(label),
            dst.raw()
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a graph in edge-list format.
pub fn read_edge_list<R: Read>(reader: R) -> Result<LabeledMultigraph, GraphError> {
    let mut builder = GraphBuilder::new();
    let r = BufReader::new(reader);
    // Declared vertex count: last `# vertices N` header wins; validated
    // against every edge once the whole file is read.
    let mut declared: Option<usize> = None;
    for (idx, line) in r.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('#') {
            let mut parts = rest.split_whitespace();
            if parts.next() == Some("vertices") {
                if let Some(n) = parts.next().and_then(|s| s.parse::<usize>().ok()) {
                    declared = Some(n);
                }
            }
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let (src, label, dst) = match (parts.next(), parts.next(), parts.next()) {
            (Some(s), Some(l), Some(d)) => (s, l, d),
            _ => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("expected 'src label dst', got '{trimmed}'"),
                })
            }
        };
        let src: u32 = src.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("bad source vertex '{src}'"),
        })?;
        let dst: u32 = dst.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            message: format!("bad target vertex '{dst}'"),
        })?;
        builder.add_edge(src, label, dst);
    }
    match declared {
        Some(n) => builder.build_with_vertex_count(n),
        None => Ok(builder.build()),
    }
}

/// Writes `graph` to a file.
pub fn save_graph(graph: &LabeledMultigraph, path: &Path) -> Result<(), GraphError> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

/// Loads a graph from a file.
pub fn load_graph(path: &Path) -> Result<LabeledMultigraph, GraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Loads a graph from either persistence format, sniffing the leading
/// bytes: a file starting with the binary snapshot magic
/// ([`rpq_graph::snapshot::MAGIC`]) is read as a [`VersionedGraph`]
/// snapshot (epoch preserved); anything else is parsed as a plain-text
/// edge list and wrapped at epoch 0.
///
/// This is what lets the serving front-end's `load` command accept a
/// generator dump and a warm snapshot interchangeably.
pub fn load_versioned(path: &Path) -> Result<VersionedGraph, GraphError> {
    let mut file = std::fs::File::open(path)?;
    if sniff_graph_snapshot(&mut file)? {
        rpq_graph::snapshot::read_snapshot(BufReader::new(file))
    } else {
        Ok(VersionedGraph::new(read_edge_list(file)?))
    }
}

/// Reads the first bytes of `file` and rewinds it, reporting whether they
/// carry the binary graph-snapshot magic. Streaming — the file is never
/// slurped just to sniff 8 bytes.
fn sniff_graph_snapshot(file: &mut std::fs::File) -> Result<bool, GraphError> {
    use std::io::Seek;
    let mut head = [0u8; 8];
    let mut n = 0;
    loop {
        let k = file.read(&mut head[n..])?;
        if k == 0 || n + k == head.len() {
            n += k;
            break;
        }
        n += k;
    }
    file.seek(std::io::SeekFrom::Start(0))?;
    Ok(rpq_graph::snapshot::matches_magic(&head[..n]))
}

/// Converts between the two graph persistence formats, sniffing the input
/// with the same rule as [`load_versioned`] and writing the *other*
/// format. Returns `true` when the output is a binary snapshot (i.e. the
/// input was an edge list).
///
/// Converting a snapshot to an edge list **drops the epoch** (the text
/// format has no epoch field); converting back yields epoch 0.
pub fn convert_graph_file(input: &Path, output: &Path) -> Result<bool, GraphError> {
    let mut file = std::fs::File::open(input)?;
    if sniff_graph_snapshot(&mut file)? {
        let graph = rpq_graph::snapshot::read_snapshot(BufReader::new(file))?;
        save_graph(graph.graph(), output)?;
        Ok(false)
    } else {
        let graph = VersionedGraph::new(read_edge_list(file)?);
        rpq_graph::snapshot::save_snapshot(&graph, output)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpq_graph::fixtures::paper_graph;

    #[test]
    fn roundtrip_paper_graph() {
        let g = paper_graph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert_eq!(back.label_count(), g.label_count());
        let a: Vec<_> = g
            .all_edges()
            .map(|(s, l, d)| (s.raw(), g.labels().name(l).to_owned(), d.raw()))
            .collect();
        let mut b: Vec<_> = back
            .all_edges()
            .map(|(s, l, d)| (s.raw(), back.labels().name(l).to_owned(), d.raw()))
            .collect();
        let mut a = a;
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn header_preserves_isolated_vertices() {
        let text = "# vertices 50\n0 a 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 50);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\n0 x 1\n\n1 y 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let text = "0 a 1\n0 a\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        let text = "zero a 1\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn duplicated_header_last_wins() {
        // Two headers: the later (larger) one is authoritative.
        let text = "# vertices 5\n0 a 1\n# vertices 50\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 50);
        // And the later one wins even when it *shrinks* the declaration.
        let text = "# vertices 50\n0 a 1\n# vertices 5\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 5);
    }

    #[test]
    fn mid_file_header_applies_to_the_whole_file() {
        // A header after some edges still pins the count for all of them.
        let text = "0 a 1\n# vertices 9\n1 b 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 9);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn out_of_range_vertex_ids_error_when_declared() {
        let text = "# vertices 5\n0 a 7\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfBounds {
                vertex: 7,
                vertex_count: 5
            }
        );
        // Validation uses the *last* header: a later, larger one repairs it.
        let text = "# vertices 5\n0 a 7\n# vertices 8\n";
        assert!(read_edge_list(text.as_bytes()).is_ok());
        // A later, smaller one breaks previously fine edges.
        let text = "# vertices 8\n0 a 7\n# vertices 5\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::VertexOutOfBounds { vertex: 7, .. })
        ));
        // Boundary id N-1 is fine.
        let text = "# vertices 8\n0 a 7\n";
        assert_eq!(read_edge_list(text.as_bytes()).unwrap().vertex_count(), 8);
    }

    #[test]
    fn without_header_vertex_count_is_inferred() {
        let text = "0 a 7\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 8);
    }

    #[test]
    fn malformed_header_is_an_ordinary_comment() {
        let text = "# vertices x\n# vertices\n0 a 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn load_versioned_sniffs_both_formats() {
        let dir = std::env::temp_dir().join("rpq_io_auto_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = paper_graph();

        // Edge-list text → epoch 0.
        let el_path = dir.join("g.el");
        save_graph(&g, &el_path).unwrap();
        let from_text = load_versioned(&el_path).unwrap();
        assert_eq!(from_text.epoch(), 0);
        assert_eq!(from_text.graph().edge_count(), g.edge_count());

        // Binary snapshot → epoch preserved.
        let mut vg = rpq_graph::VersionedGraph::new(g.clone());
        let mut delta = rpq_graph::GraphDelta::new();
        delta.insert(0, "z", 9);
        vg.apply(&delta);
        let snap_path = dir.join("g.snap");
        rpq_graph::snapshot::save_snapshot(&vg, &snap_path).unwrap();
        let from_snap = load_versioned(&snap_path).unwrap();
        assert_eq!(from_snap.epoch(), 1);
        assert_eq!(from_snap.graph().edge_count(), g.edge_count() + 1);

        std::fs::remove_file(&el_path).ok();
        std::fs::remove_file(&snap_path).ok();
    }

    #[test]
    fn convert_between_formats_roundtrips_edges() {
        let dir = std::env::temp_dir().join("rpq_io_convert_test");
        std::fs::create_dir_all(&dir).unwrap();
        let el = dir.join("c.el");
        let snap = dir.join("c.snap");
        let back = dir.join("c_back.el");
        let g = paper_graph();
        save_graph(&g, &el).unwrap();

        // text → snapshot → text preserves the edge set exactly.
        assert!(convert_graph_file(&el, &snap).unwrap());
        assert!(!convert_graph_file(&snap, &back).unwrap());
        let a = load_graph(&el).unwrap();
        let b = load_graph(&back).unwrap();
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let pairs = |g: &rpq_graph::LabeledMultigraph| {
            let mut v: Vec<_> = g
                .all_edges()
                .map(|(s, l, d)| (s.raw(), g.labels().name(l).to_owned(), d.raw()))
                .collect();
            v.sort();
            v
        };
        assert_eq!(pairs(&a), pairs(&b));
        for p in [&el, &snap, &back] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("rpq_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.el");
        let g = paper_graph();
        save_graph(&g, &path).unwrap();
        let back = load_graph(&path).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        std::fs::remove_file(&path).ok();
    }
}
